// Unit tests for the RHIK index: lookup cost, caching, membership,
// collision aborts, GC hooks, scan, and directory persistence.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "index/rhik/rhik_index.hpp"
#include "index_test_rig.hpp"

namespace rhik::index {
namespace {

using flash::Geometry;
using flash::NandLatency;
using flash::Ppa;
using Rig = testutil::IndexRig<RhikIndex, RhikConfig>;

TEST(Rhik, PutGetErase) {
  Rig rig;
  EXPECT_EQ(rig.index.put(0xABC, 5), Status::kOk);
  EXPECT_EQ(rig.index.size(), 1u);
  ASSERT_TRUE(rig.index.get(0xABC).has_value());
  EXPECT_EQ(*rig.index.get(0xABC), 5u);
  EXPECT_FALSE(rig.index.get(0xDEF).has_value());
  EXPECT_EQ(rig.index.erase(0xABC), Status::kOk);
  EXPECT_EQ(rig.index.erase(0xABC), Status::kNotFound);
  EXPECT_EQ(rig.index.size(), 0u);
}

TEST(Rhik, PutUpdatesInPlace) {
  Rig rig;
  EXPECT_EQ(rig.index.put(7, 100), Status::kOk);
  EXPECT_EQ(rig.index.put(7, 200), Status::kOk);
  EXPECT_EQ(rig.index.size(), 1u);
  EXPECT_EQ(*rig.index.get(7), 200u);
}

TEST(Rhik, ExistsIsSignatureMembership) {
  Rig rig;
  ASSERT_EQ(rig.index.put(123, 9), Status::kOk);
  EXPECT_TRUE(rig.index.exists(123));
  EXPECT_FALSE(rig.index.exists(321));
}

TEST(Rhik, InitialSizingFollowsEq2) {
  RhikConfig cfg;
  cfg.anticipated_keys = 10000;  // tiny() pages: 4096/17 = 240 records
  Rig rig(cfg);
  // ceil(10000/240) = 42 -> 64 entries (6 bits).
  EXPECT_EQ(rig.index.dir_bits(), 6u);
  EXPECT_EQ(rig.index.capacity(), 64u * 240);
}

TEST(Rhik, AtMostOneFlashReadPerLookup) {
  // The headline property (§IV-A4): any record lookup costs <= 1 flash
  // read, even with a cache far smaller than the index.
  RhikConfig cfg;
  cfg.anticipated_keys = 20000;
  Rig rig(cfg, /*cache_bytes=*/4 * 4096);  // 4 cached pages only
  Rng rng(3);
  std::vector<std::uint64_t> sigs;
  for (int i = 0; i < 15000; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) sigs.push_back(sig);
    rig.maybe_gc();
  }
  rig.index.reset_op_stats();
  Rng pick(5);
  for (int i = 0; i < 2000; ++i) {
    rig.index.get(sigs[pick.next_below(sigs.size())]);
  }
  rig.expect_no_lost_writebacks();
  const auto& h = rig.index.op_stats().reads_per_lookup;
  EXPECT_EQ(h.max(), 1u);               // never more than one flash read
  EXPECT_GT(rig.index.op_stats().flash_reads, 0u);  // cache was too small
}

TEST(Rhik, WarmCacheLookupsAreFree) {
  Rig rig({}, /*cache_bytes=*/1 << 20);  // whole index fits
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_EQ(rig.index.put(i * 77, i), Status::kOk);
  }
  rig.index.reset_op_stats();
  for (std::uint64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(rig.index.get(i * 77).has_value());
  }
  EXPECT_EQ(rig.index.op_stats().flash_reads, 0u);
  EXPECT_EQ(rig.index.op_stats().reads_per_lookup.max(), 0u);
}

TEST(Rhik, DirtyTablesSurviveEviction) {
  // Cache of one page: every bucket switch evicts (write-back).
  RhikConfig cfg;
  cfg.anticipated_keys = 240 * 8;  // 8 buckets
  Rig rig(cfg, /*cache_bytes=*/4096);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  EXPECT_GT(rig.index.op_stats().flash_writes, 0u);
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(Rhik, EraseToEmptyReleasesPages) {
  RhikConfig cfg;
  cfg.anticipated_keys = 240 * 4;
  Rig rig(cfg, 4096);
  std::vector<std::uint64_t> sigs;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) sigs.push_back(sig);
  }
  for (const auto sig : sigs) ASSERT_EQ(rig.index.erase(sig), Status::kOk);
  EXPECT_EQ(rig.index.size(), 0u);
  ASSERT_EQ(rig.index.flush(), Status::kOk);
  // All directory entries are back to "no page".
  for (const auto sig : sigs) EXPECT_FALSE(rig.index.get(sig).has_value());
}

TEST(Rhik, CollisionAbortSurfacesAndCounts) {
  RhikConfig cfg;
  cfg.hop_range = 2;  // pathologically small neighbourhood
  cfg.resize_threshold = 1.1;  // never resize: force local collisions
  Rig rig(cfg);
  Rng rng(4);
  int aborts = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rig.index.put(rng.next(), i) == Status::kCollisionAbort) ++aborts;
  }
  EXPECT_GT(aborts, 0);
  EXPECT_EQ(rig.index.op_stats().collision_aborts,
            static_cast<std::uint64_t>(aborts));
}

TEST(Rhik, ScanVisitsEveryRecordOnce) {
  Rig rig;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  ASSERT_EQ(rig.index.scan([&](std::uint64_t sig, Ppa ppa) { seen[sig] = ppa; }),
            Status::kOk);
  EXPECT_EQ(seen, ref);
}

TEST(Rhik, GcHooksLookupAndUpdate) {
  Rig rig;
  ASSERT_EQ(rig.index.put(55, 1000), Status::kOk);
  ASSERT_TRUE(rig.index.gc_lookup(55).has_value());
  EXPECT_EQ(*rig.index.gc_lookup(55), 1000u);
  EXPECT_FALSE(rig.index.gc_lookup(56).has_value());

  EXPECT_EQ(rig.index.gc_update_location(55, 2000), Status::kOk);
  EXPECT_EQ(*rig.index.get(55), 2000u);
  EXPECT_EQ(rig.index.gc_update_location(999, 1), Status::kNotFound);
}

TEST(Rhik, GcIndexPageLivenessAndRelocation) {
  RhikConfig cfg;
  Rig rig(cfg, /*cache_bytes=*/4096);
  Rng rng(8);
  for (int i = 0; i < 400; ++i) rig.index.put(rng.next(), i);
  ASSERT_EQ(rig.index.flush(), Status::kOk);

  // Find a live record page via the spare areas.
  const auto& g = rig.nand.geometry();
  Ppa live_page = flash::kInvalidPpa;
  Bytes spare(g.spare_size());
  for (Ppa p = 0; p < g.pages_total(); ++p) {
    if (!rig.nand.is_programmed(p)) continue;
    if (!ok(rig.nand.read_page(p, {}, spare))) continue;
    if (ftl::SpareTag::decode(spare).kind == ftl::PageKind::kIndexRecord &&
        rig.index.gc_is_live_index_page(p)) {
      live_page = p;
      break;
    }
  }
  ASSERT_NE(live_page, flash::kInvalidPpa);
  ASSERT_EQ(rig.index.gc_relocate_index_page(live_page), Status::kOk);
  EXPECT_FALSE(rig.index.gc_is_live_index_page(live_page));  // now stale
}

TEST(Rhik, DirectorySerializationRestoresIndex) {
  // Clean-shutdown persistence: flush, serialize the directory, build a
  // fresh in-DRAM index over the same flash state, restore.
  RhikConfig cfg;
  SimClock clock;
  flash::NandDevice nand(Geometry::tiny(128), NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 2);

  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Bytes image;
  {
    RhikIndex index(&nand, &alloc, cfg, 1 << 20);
    Rng rng(12);
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t sig = rng.next();
      if (ok(index.put(sig, i))) ref[sig] = i;
    }
    ASSERT_EQ(index.flush(), Status::kOk);
    image = index.serialize_directory();
  }
  RhikIndex restored(&nand, &alloc, cfg, 1 << 20);
  ASSERT_EQ(restored.load_directory(image), Status::kOk);
  EXPECT_EQ(restored.size(), ref.size());
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(restored.get(sig).has_value()) << sig;
    EXPECT_EQ(*restored.get(sig), ppa);
  }
}

TEST(Rhik, LoadDirectoryRejectsGarbage) {
  Rig rig;
  Bytes garbage(100, 0x7);
  EXPECT_EQ(rig.index.load_directory(garbage), Status::kCorruption);
  Bytes tiny_buf(4, 0);
  EXPECT_EQ(rig.index.load_directory(tiny_buf), Status::kCorruption);
}

TEST(Rhik, DramBytesTracksDirectory) {
  RhikConfig cfg;
  cfg.anticipated_keys = 240 * 16;  // 16 buckets
  Rig rig(cfg);
  // Primary + overflow directory entries, 5 B each.
  EXPECT_EQ(rig.index.dram_bytes(), 2u * 16 * cfg.ppa_bytes);
}

TEST(Rhik, RandomOpsAgreeWithReference) {
  RhikConfig cfg;
  Rig rig(cfg, /*cache_bytes=*/8 * 4096);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(99);
  for (int step = 0; step < 30000; ++step) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next_below(5000) * 0x9E3779B9u + 1;
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 5) {
      const std::uint64_t ppa = rng.next_below(1 << 20);
      if (ok(rig.index.put(sig, ppa))) ref[sig] = ppa;
    } else if (action < 8) {
      const auto got = rig.index.get(sig);
      const auto it = ref.find(sig);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value()) << "step " << step;
      } else {
        ASSERT_TRUE(got.has_value()) << "step " << step;
        EXPECT_EQ(*got, it->second);
      }
    } else {
      const bool had = ref.erase(sig) > 0;
      EXPECT_EQ(rig.index.erase(sig), had ? Status::kOk : Status::kNotFound);
    }
  }
  EXPECT_EQ(rig.index.size(), ref.size());
  rig.expect_no_lost_writebacks();
}

}  // namespace
}  // namespace rhik::index
