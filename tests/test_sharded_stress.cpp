// ThreadSanitizer-targeted stress: concurrent submitter threads driving
// a ShardedKvssd while another thread issues drain/stats barriers.
// Build with -DRHIK_SANITIZE=thread and run via `ctest -L stress` to get
// the TSan tier; in a plain build it doubles as a race smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "shard/sharded_kvssd.hpp"
#include "workload/keygen.hpp"

namespace rhik::shard {
namespace {

TEST(ShardedStress, ConcurrentSubmittersAndDrainBarriers) {
  ShardedConfig sc;
  sc.device.geometry = flash::Geometry::tiny(128);
  sc.device.dram_cache_bytes = 64 * 1024;
  sc.num_shards = 4;
  sc.ring_capacity = 64;  // small ring: exercise producer back-pressure
  ShardedKvssd arr(sc);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  constexpr std::uint64_t kKeyspace = 256;
  std::atomic<std::uint64_t> acks{0};
  std::atomic<bool> submitting{true};

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Bytes value(24);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(t) * 7919 + i) % kKeyspace;
        Bytes key = workload::key_for_id(id, 16);
        switch (i % 3) {
          case 0:
            workload::fill_value(id, value);
            arr.submit_put(std::move(key), value, [&](Status) {
              acks.fetch_add(1, std::memory_order_relaxed);
            });
            break;
          case 1:
            arr.submit_get(std::move(key), [&](Status, Bytes&&) {
              acks.fetch_add(1, std::memory_order_relaxed);
            });
            break;
          case 2:
            arr.submit_del(std::move(key), [&](Status) {
              acks.fetch_add(1, std::memory_order_relaxed);
            });
            break;
        }
        if (i % 128 == 0) {  // sprinkle sync ops between async bursts
          Bytes v;
          arr.get(workload::key_for_id(id, 16), &v);
        }
      }
    });
  }

  // Drain/stats barriers race with the submitters on purpose.
  std::thread drainer([&] {
    while (submitting.load(std::memory_order_acquire)) {
      arr.drain();
      const auto agg = arr.stats();
      EXPECT_LE(agg.puts,
                static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
      std::this_thread::yield();
    }
  });

  for (auto& t : submitters) t.join();
  submitting.store(false, std::memory_order_release);
  drainer.join();
  arr.drain();

  EXPECT_EQ(acks.load(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  ASSERT_EQ(arr.flush(), Status::kOk);

  // The array is consistent after the storm: every present key reads
  // back with the deterministic value pattern.
  std::uint64_t present = 0;
  Bytes v;
  for (std::uint64_t id = 0; id < kKeyspace; ++id) {
    const Status s = arr.get(workload::key_for_id(id, 16), &v);
    if (ok(s)) {
      EXPECT_TRUE(workload::check_value(id, v)) << "key id " << id;
      present++;
    }
  }
  EXPECT_EQ(arr.key_count(), present);
}

}  // namespace
}  // namespace rhik::shard
