// ThreadSanitizer-targeted stress: concurrent submitter threads driving
// a ShardedKvssd while another thread issues drain/stats barriers.
// Build with -DRHIK_SANITIZE=thread and run via `ctest -L stress` to get
// the TSan tier; in a plain build it doubles as a race smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "shard/sharded_kvssd.hpp"
#include "workload/keygen.hpp"

namespace rhik::shard {
namespace {

TEST(ShardedStress, ConcurrentSubmittersAndDrainBarriers) {
  ShardedConfig sc;
  sc.device.geometry = flash::Geometry::tiny(128);
  sc.device.dram_cache_bytes = 64 * 1024;
  sc.num_shards = 4;
  sc.ring_capacity = 64;  // small ring: exercise producer back-pressure
  ShardedKvssd arr(sc);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;
  constexpr std::uint64_t kKeyspace = 256;
  std::atomic<std::uint64_t> acks{0};
  std::atomic<bool> submitting{true};

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Bytes value(24);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(t) * 7919 + i) % kKeyspace;
        Bytes key = workload::key_for_id(id, 16);
        switch (i % 3) {
          case 0:
            workload::fill_value(id, value);
            arr.submit_put(std::move(key), value, [&](Status) {
              acks.fetch_add(1, std::memory_order_relaxed);
            });
            break;
          case 1:
            arr.submit_get(std::move(key), [&](Status, Bytes&&) {
              acks.fetch_add(1, std::memory_order_relaxed);
            });
            break;
          case 2:
            arr.submit_del(std::move(key), [&](Status) {
              acks.fetch_add(1, std::memory_order_relaxed);
            });
            break;
        }
        if (i % 128 == 0) {  // sprinkle sync ops between async bursts
          Bytes v;
          arr.get(workload::key_for_id(id, 16), &v);
        }
      }
    });
  }

  // Drain/stats barriers race with the submitters on purpose.
  std::thread drainer([&] {
    while (submitting.load(std::memory_order_acquire)) {
      arr.drain();
      const auto agg = arr.stats();
      EXPECT_LE(agg.puts,
                static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
      std::this_thread::yield();
    }
  });

  for (auto& t : submitters) t.join();
  submitting.store(false, std::memory_order_release);
  drainer.join();
  arr.drain();

  EXPECT_EQ(acks.load(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  ASSERT_EQ(arr.flush(), Status::kOk);

  // The array is consistent after the storm: every present key reads
  // back with the deterministic value pattern.
  std::uint64_t present = 0;
  Bytes v;
  for (std::uint64_t id = 0; id < kKeyspace; ++id) {
    const Status s = arr.get(workload::key_for_id(id, 16), &v);
    if (ok(s)) {
      EXPECT_TRUE(workload::check_value(id, v)) << "key id " << id;
      present++;
    }
  }
  EXPECT_EQ(arr.key_count(), present);
}

// TSan-targeted MVCC stress: snapshot scans racing mutation churn across
// the array. Scanners open a pinned iterator (explicit snapshot on one
// thread, iterator-internal pin on the other) while churn threads
// overwrite and delete/reinsert the same keyspace. The scan must stay a
// consistent cut: every key the iterator yields resolves via read_at on
// the SAME snapshot to a well-formed generation value — never a torn
// buffer, never kNotFound (a key listed at the pinned epoch must exist
// at it). kSnapshotTooOld is the one legitimate failure: the retention
// budget may expire a pin mid-scan, and the scanner then abandons the
// snapshot, not the invariant.
TEST(ShardedStress, SnapshotScansUnderChurn) {
  ShardedConfig sc;
  sc.device.geometry = flash::Geometry::tiny(128);
  sc.device.dram_cache_bytes = 64 * 1024;
  sc.device.prefix_signatures = true;  // iterator class filter needs them
  sc.num_shards = 4;
  ShardedKvssd arr(sc);

  constexpr std::uint64_t kKeyspace = 160;
  constexpr std::uint64_t kGens = 8;
  constexpr std::size_t kValueSize = 48;
  // All ids < 16^12 share the first four key bytes ("k000") — the
  // iterator's prefix class filter hashes exactly that window.
  const Bytes prefix{'k', '0', '0', '0'};

  // Seed generation 0 so early snapshots see a full cut.
  Bytes value(kValueSize);
  for (std::uint64_t id = 0; id < kKeyspace; ++id) {
    workload::fill_value(id * kGens, value);
    ASSERT_EQ(arr.put(workload::key_for_id(id, 16), value), Status::kOk);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans_completed{0};
  std::atomic<std::uint64_t> scans_expired{0};

  // A value is untorn iff it matches SOME generation of its key.
  const auto untorn = [](std::uint64_t id, ByteSpan v) {
    for (std::uint64_t g = 0; g < kGens; ++g) {
      if (workload::check_value(id * kGens + g, v)) return true;
    }
    return false;
  };
  const auto id_of = [](const Bytes& key) {
    std::uint64_t id = 0;
    for (std::size_t i = 1; i < key.size() && i <= 15; ++i) {
      const char c = static_cast<char>(key[i]);
      id = id * 16 + static_cast<std::uint64_t>(
                         c <= '9' ? c - '0' : 10 + (c - 'a'));
    }
    return id;
  };

  std::vector<std::thread> churners;
  for (int t = 0; t < 2; ++t) {
    churners.emplace_back([&, t] {
      Bytes v(kValueSize);
      std::uint64_t i = 0;
      std::atomic<std::uint64_t> inflight{0};
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t id = (t * 7919 + i) % kKeyspace;
        Bytes key = workload::key_for_id(id, 16);
        if (t == 1 && i % 5 == 0) {
          // Delete/reinsert lane: exercises tombstone retention.
          arr.del(key);
          workload::fill_value(id * kGens, v);
          arr.put(std::move(key), v);
        } else {
          workload::fill_value(id * kGens + (i % kGens), v);
          inflight.fetch_add(1, std::memory_order_relaxed);
          arr.submit_put(std::move(key), v, [&](Status) {
            inflight.fetch_sub(1, std::memory_order_relaxed);
          });
        }
        if (++i % 64 == 0) arr.drain();
      }
      arr.drain();
      EXPECT_EQ(inflight.load(), 0u);
    });
  }

  std::vector<std::thread> scanners;
  for (int t = 0; t < 2; ++t) {
    scanners.emplace_back([&, t] {
      const bool explicit_snap = (t == 0);
      for (int round = 0; round < 25; ++round) {
        api::SnapshotHandle snap{};
        if (explicit_snap) {
          auto s = arr.open_snapshot();
          ASSERT_TRUE(static_cast<bool>(s));
          snap = *s;
        }
        auto it = arr.kvs_open_iterator(prefix,
                                        explicit_snap ? &snap : nullptr);
        ASSERT_TRUE(static_cast<bool>(it));
        std::vector<Bytes> keys;
        bool expired = false;
        for (;;) {
          std::vector<Bytes> batch;
          const Status s = arr.kvs_iterator_next(*it, 17, &batch);
          for (auto& k : batch) keys.push_back(std::move(k));
          if (s == Status::kNotFound) break;
          if (s == Status::kSnapshotTooOld) {
            expired = true;
            break;
          }
          ASSERT_EQ(s, Status::kOk);
        }
        if (explicit_snap && !expired) {
          // Cut check: every listed key must read back untorn at the
          // same snapshot.
          for (const Bytes& key : keys) {
            Bytes v;
            const Status s = arr.read_at(snap, key, &v);
            if (s == Status::kSnapshotTooOld) {
              expired = true;
              break;
            }
            ASSERT_EQ(s, Status::kOk)
                << "iterator listed a key read_at cannot see";
            EXPECT_TRUE(untorn(id_of(key), v)) << "torn value under churn";
          }
        }
        EXPECT_EQ(arr.kvs_close_iterator(*it), Status::kOk);
        if (explicit_snap) arr.release_snapshot(snap);
        (expired ? scans_expired : scans_completed).fetch_add(1);
      }
    });
  }

  for (auto& t : scanners) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : churners) t.join();
  arr.drain();

  // The churn must not have been able to expire every scan: defaults
  // give the retention budget room for this working set.
  EXPECT_GT(scans_completed.load(), 0u);

  // Quiesced array is intact: every surviving key reads untorn.
  Bytes v;
  for (std::uint64_t id = 0; id < kKeyspace; ++id) {
    const Status s = arr.get(workload::key_for_id(id, 16), &v);
    if (ok(s)) EXPECT_TRUE(untorn(id, v)) << "key id " << id;
  }
  // No leaked pins: scanners released everything they opened.
  EXPECT_EQ(arr.snapshots().registry.open_pins(), 0u);
}

}  // namespace
}  // namespace rhik::shard
