// Unit tests for the record-page codec and Eq. 1 sizing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "index/rhik/record_page.hpp"

namespace rhik::index {
namespace {

TEST(RhikConfig, Eq1PaperValues) {
  // Eq. 1 with the paper defaults: 32 KiB page, kh=8, ppa=5, hi=4 -> 1927.
  RhikConfig cfg;
  EXPECT_EQ(cfg.hopinfo_bytes(), 4u);
  EXPECT_EQ(cfg.records_per_page(32 * 1024), 1927u);
}

TEST(RhikConfig, Eq1WideSignatures) {
  RhikConfig cfg;
  cfg.sig_bytes = 16;  // 128-bit signatures (§IV-A3)
  EXPECT_EQ(cfg.records_per_page(32 * 1024), 32768u / 25);
}

TEST(RhikConfig, Eq1SmallerHopinfo) {
  RhikConfig cfg;
  cfg.hop_range = 16;  // hi = 2 B
  EXPECT_EQ(cfg.records_per_page(32 * 1024), 32768u / 15);
}

TEST(RhikConfig, Eq2DirectorySizing) {
  RhikConfig cfg;
  cfg.anticipated_keys = 0;
  EXPECT_EQ(cfg.initial_dir_bits(32 * 1024), 0u);  // conservative minimum

  cfg.anticipated_keys = 1927;  // exactly one page of records
  EXPECT_EQ(cfg.initial_dir_bits(32 * 1024), 0u);

  cfg.anticipated_keys = 1928;  // needs 2 pages -> 1 bit
  EXPECT_EQ(cfg.initial_dir_bits(32 * 1024), 1u);

  cfg.anticipated_keys = 1927 * 1000;  // 1000 pages -> 2^10
  EXPECT_EQ(cfg.initial_dir_bits(32 * 1024), 10u);
}

TEST(RhikConfig, Eq2DirectoryDramFootprint) {
  // §IV-A4: directory cost ~0.005 bytes/key at 32 KiB pages.
  RhikConfig cfg;
  const double bytes_per_key =
      static_cast<double>(cfg.ppa_bytes) / cfg.records_per_page(32 * 1024);
  EXPECT_NEAR(bytes_per_key, 0.005, 0.003);
}

TEST(IndexPageSpare, RoundTrip) {
  Bytes spare(64, 0xFF);
  IndexPageSpare s;
  s.generation = 3;
  s.bucket = 0x123456789Aull;
  s.record_count = 1700;
  s.checkpoint_id = 9;
  s.fragment = 2;
  s.fragments_total = 5;
  s.encode(spare);
  const IndexPageSpare got = IndexPageSpare::decode(spare);
  EXPECT_EQ(got.generation, 3u);
  EXPECT_EQ(got.bucket, 0x123456789Aull);
  EXPECT_EQ(got.record_count, 1700u);
  EXPECT_EQ(got.checkpoint_id, 9u);
  EXPECT_EQ(got.fragment, 2u);
  EXPECT_EQ(got.fragments_total, 5u);
}

class CodecTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kPage = 4096;
  RhikConfig cfg_;
  RecordPageCodec codec_{cfg_, kPage};
};

TEST_F(CodecTest, EmptyTableRoundTrip) {
  hash::HopscotchTable t = codec_.make_table();
  Bytes page(kPage);
  codec_.encode(t, page);
  hash::HopscotchTable got = codec_.make_table();
  ASSERT_EQ(codec_.decode(page, &got), Status::kOk);
  EXPECT_EQ(got.size(), 0u);
}

TEST_F(CodecTest, PopulatedRoundTripPreservesEverything) {
  hash::HopscotchTable t = codec_.make_table();
  Rng rng(17);
  const std::uint32_t n = codec_.records_per_page() * 3 / 4;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> recs;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t sig = rng.next();
    const std::uint64_t ppa = rng.next_below(std::uint64_t{1} << 40);
    if (ok(t.insert(sig, ppa))) recs.emplace_back(sig, ppa);
  }
  Bytes page(kPage);
  codec_.encode(t, page);

  hash::HopscotchTable got = codec_.make_table();
  ASSERT_EQ(codec_.decode(page, &got), Status::kOk);
  EXPECT_EQ(got.size(), t.size());
  EXPECT_TRUE(got.check_invariants());
  for (const auto& [sig, ppa] : recs) {
    ASSERT_TRUE(got.find(sig).has_value()) << sig;
    EXPECT_EQ(*got.find(sig), ppa);
  }
}

TEST_F(CodecTest, DecodePreservesSlotPositions) {
  // Byte-identical re-encode: decode must reproduce the exact layout.
  hash::HopscotchTable t = codec_.make_table();
  Rng rng(23);
  for (int i = 0; i < 100; ++i) t.insert(rng.next(), rng.next_below(1 << 30));
  Bytes page1(kPage);
  codec_.encode(t, page1);
  hash::HopscotchTable got = codec_.make_table();
  ASSERT_EQ(codec_.decode(page1, &got), Status::kOk);
  Bytes page2(kPage);
  codec_.encode(got, page2);
  EXPECT_EQ(page1, page2);
}

TEST_F(CodecTest, CorruptHopinfoDetected) {
  hash::HopscotchTable t = codec_.make_table();
  ASSERT_EQ(t.insert(42, 7), Status::kOk);
  Bytes page(kPage);
  codec_.encode(t, page);
  // Flip a random hopinfo bit pointing at a dead slot with a bogus home.
  const std::uint32_t r = codec_.records_per_page();
  const std::size_t hop_region = std::size_t{r} * (cfg_.sig_bytes + cfg_.ppa_bytes);
  // Set an extra bit in some bucket's hopinfo: the decoded slot carries
  // sig 0, whose home bucket (0, the mix64 fixed point) mismatches any
  // non-zero bucket.
  std::uint32_t bogus = (t.home_bucket(42) + 57) % r;
  if (bogus == 0) bogus = 1;
  page[hop_region + 4 * bogus] |= 0x01;
  hash::HopscotchTable got = codec_.make_table();
  EXPECT_EQ(codec_.decode(page, &got), Status::kCorruption);
}

TEST_F(CodecTest, ShortBufferRejected) {
  Bytes page(16);
  hash::HopscotchTable got = codec_.make_table();
  EXPECT_EQ(codec_.decode(page, &got), Status::kInvalidArgument);
}

// Round-trips across record geometries (page size x hop range).
struct CodecParam {
  std::uint32_t page_size;
  std::uint32_t hop;
};
class CodecGeometryTest : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecGeometryTest, RoundTrip) {
  const auto [page_size, hop] = GetParam();
  RhikConfig cfg;
  cfg.hop_range = hop;
  RecordPageCodec codec(cfg, page_size);
  hash::HopscotchTable t = codec.make_table();
  Rng rng(page_size + hop);
  const std::uint32_t n = codec.records_per_page() / 2;
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(t.insert(rng.next(), rng.next_below(1 << 20)), Status::kOk);
  }
  Bytes page(page_size);
  codec.encode(t, page);
  hash::HopscotchTable got = codec.make_table();
  ASSERT_EQ(codec.decode(page, &got), Status::kOk);
  EXPECT_EQ(got.size(), n);
  EXPECT_TRUE(got.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Geometries, CodecGeometryTest,
                         ::testing::Values(CodecParam{2048, 32},
                                           CodecParam{4096, 32},
                                           CodecParam{4096, 16},
                                           CodecParam{32768, 32},
                                           CodecParam{32768, 8}));

}  // namespace
}  // namespace rhik::index
