// Seed plumbing for randomized tests.
//
// Every randomized test derives its RNG from `harness_seed(default)`, so
// a failure seen in CI (or the nightly soak) can be replayed locally by
// exporting RHIK_TEST_SEED=<seed> — decimal or 0x-hex — without touching
// the source. Tests must include the effective seed in their failure
// messages so the value to replay is always in the log.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace rhik::test {

/// The seed a randomized test should run with: the RHIK_TEST_SEED
/// environment variable when set (decimal or 0x-prefixed hex), otherwise
/// the test's own default.
inline std::uint64_t harness_seed(std::uint64_t default_seed) {
  if (const char* env = std::getenv("RHIK_TEST_SEED")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 0);
    if (end != env) return v;
  }
  return default_seed;
}

}  // namespace rhik::test
