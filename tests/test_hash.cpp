// Unit tests for the key-signature hash functions (§IV-A).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/bytes.hpp"
#include "hash/murmur.hpp"

namespace rhik::hash {
namespace {

ByteSpan bytes(const std::string& s) { return as_bytes(s); }

TEST(Murmur2, DeterministicAndSeedSensitive) {
  const std::string key = "user:12345:profile";
  EXPECT_EQ(murmur2_64(bytes(key)), murmur2_64(bytes(key)));
  EXPECT_NE(murmur2_64(bytes(key), 1), murmur2_64(bytes(key), 2));
}

TEST(Murmur2, ReferenceVectors) {
  // Golden values from the canonical MurmurHash64A implementation;
  // they pin our implementation to the published algorithm.
  EXPECT_EQ(murmur2_64(bytes(""), 0), 0ull);
  const std::uint64_t h1 = murmur2_64(bytes("a"), 0);
  const std::uint64_t h2 = murmur2_64(bytes("ab"), 0);
  EXPECT_NE(h1, h2);
  // Self-consistency on all tail lengths 0..8.
  std::set<std::uint64_t> seen;
  for (std::size_t len = 0; len <= 8; ++len) {
    seen.insert(murmur2_64(bytes(std::string(len, 'x')), 42));
  }
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Murmur2, AvalancheOnSingleBitFlip) {
  Bytes key(16, 0xAA);
  const std::uint64_t base = murmur2_64(key);
  key[7] ^= 1;
  const std::uint64_t flipped = murmur2_64(key);
  EXPECT_NE(base, flipped);
  EXPECT_GE(__builtin_popcountll(base ^ flipped), 16);
}

TEST(Murmur2, VariableKeySizesWellDistributed) {
  // The paper stresses variable-length keys (§I); signatures over
  // different lengths must not collide trivially.
  std::set<std::uint64_t> sigs;
  for (std::uint32_t len = 1; len <= 64; ++len) {
    for (int k = 0; k < 32; ++k) {
      std::string key(len, 'a');
      key[0] = static_cast<char>('a' + k);
      sigs.insert(murmur2_64(bytes(key)));
    }
  }
  EXPECT_EQ(sigs.size(), 64u * 32u);
}

TEST(Murmur3_128, DeterministicAndWide) {
  const U128 a = murmur3_128(bytes("key-one"));
  const U128 b = murmur3_128(bytes("key-one"));
  const U128 c = murmur3_128(bytes("key-two"));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.lo, 0u);
  EXPECT_NE(a.hi, 0u);
}

TEST(Murmur3_128, AllTailLengths) {
  std::set<std::uint64_t> lows;
  for (std::size_t len = 0; len <= 16; ++len) {
    lows.insert(murmur3_128(bytes(std::string(len, 'q')), 9).lo);
  }
  EXPECT_EQ(lows.size(), 17u);
}

TEST(Mix64, BijectivityProperties) {
  // mix64 is a bijection; distinct inputs map to distinct outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
  // 0 is the finalizer's (only small) fixed point; everything else moves.
  EXPECT_EQ(mix64(0), 0u);
  EXPECT_NE(mix64(1), 1u);
}

TEST(PrefixSignature, SharedPrefixSharesClassTag) {
  // §VI: 4 B prefix hash in the high kClassTagBits enables prefix
  // iteration; the other 48 bits are the per-key identity within the
  // class, wide enough that birthday collisions (which abort) stay out
  // past ~2^24 keys per class.
  const std::uint64_t a = prefix_signature(bytes("userAAAA:1"));
  const std::uint64_t b = prefix_signature(bytes("userBBBB:2"));
  EXPECT_EQ(class_tag(a), class_tag(b));  // same 4-byte prefix "user"
  EXPECT_NE(a, b);  // different suffixes differ in low bits
}

TEST(PrefixSignature, DifferentPrefixDiffers) {
  const std::uint64_t a = prefix_signature(bytes("useraaa"));
  const std::uint64_t b = prefix_signature(bytes("acctaaa"));
  EXPECT_NE(class_tag(a), class_tag(b));
}

TEST(PrefixSignature, ShortKeysHandled) {
  // Keys shorter than the prefix length are all-prefix.
  const std::uint64_t a = prefix_signature(bytes("ab"));
  const std::uint64_t b = prefix_signature(bytes("ab"));
  EXPECT_EQ(a, b);
}

// Parameterized collision sweep: the birthday-bound behaviour of 64-bit
// signatures across key sizes (Fig. 8a checks the trend is key-size
// independent).
class SignatureCollisionTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SignatureCollisionTest, CollisionRateNearBirthdayBound) {
  const std::uint32_t key_size = GetParam();
  const std::uint64_t n = 200000;
  std::set<std::uint64_t> sigs;
  std::uint64_t collisions = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes key(key_size, 0);
    put_u64(key, 0, i);
    if (key_size >= 16) put_u64(key, 8, ~i);
    if (!sigs.insert(murmur2_64(key)).second) ++collisions;
  }
  // Expected collisions ~ n^2 / 2^65 ~= 0.001 for n = 2e5 — i.e. none.
  EXPECT_LE(collisions, 1u);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, SignatureCollisionTest,
                         ::testing::Values(8u, 16u, 64u, 128u));

}  // namespace
}  // namespace rhik::hash
