// Crash/power-loss recovery tests: tombstones, sequence ordering, full
// log-scan index reconstruction, allocator adoption (kvssd/recovery).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/device.hpp"
#include "kvssd/recovery.hpp"
#include "workload/keygen.hpp"

namespace rhik::kvssd {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(128);  // 8 MiB
  cfg.dram_cache_bytes = 64 * 1024;
  return cfg;
}

ByteSpan key(const std::string& s) { return as_bytes(s); }

/// Simulates power loss: tears the device down (optionally after a clean
/// flush) and recovers a fresh one over the same NAND.
std::unique_ptr<KvssdDevice> power_cycle(std::unique_ptr<KvssdDevice> dev,
                                         bool clean_shutdown) {
  if (clean_shutdown) EXPECT_EQ(dev->flush(), Status::kOk);
  auto nand = dev->release_nand();
  auto recovered = KvssdDevice::recover(small_config(), std::move(nand));
  EXPECT_TRUE(recovered.has_value());
  return std::move(recovered).value();
}

TEST(Tombstone, HeaderBitRoundTrip) {
  ftl::PairHeader h{42, 10, 0, /*epoch=*/7, true};
  Bytes buf(32);
  h.encode(buf, 0);
  const auto got = ftl::PairHeader::decode(buf, 0);
  EXPECT_TRUE(got.tombstone);
  EXPECT_EQ(got.key_len, 10);
  EXPECT_EQ(got.sig, 42u);
  EXPECT_EQ(got.epoch, 7u);
}

TEST(Tombstone, StoreWritesAndReportsIt) {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::tiny(16),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 2);
  ftl::FlashKvStore store(&nand, &alloc);
  auto ppa = store.write_tombstone(99, key("dead"));
  ASSERT_TRUE(ppa);
  auto meta = store.read_pair_meta(*ppa, 99);
  ASSERT_TRUE(meta);
  EXPECT_TRUE(meta->tombstone);
  EXPECT_EQ(rhik::to_string(ByteSpan{meta->key}), "dead");
  EXPECT_EQ(store.stats().tombstones_written, 1u);
}

TEST(Tombstone, SequenceNumbersMonotonicAcrossPages) {
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::tiny(16),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 2);
  ftl::FlashKvStore store(&nand, &alloc);
  // Several pages of pairs plus an extent in the middle.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.write_pair(i + 1, key("k" + std::to_string(i)),
                                 key(std::string(400, 'v'))));
  }
  ASSERT_TRUE(store.write_pair(1000, key("big"), key(std::string(9000, 'B'))));
  ASSERT_EQ(store.flush(), Status::kOk);

  const auto& g = nand.geometry();
  Bytes spare(g.spare_size());
  std::uint64_t last_seq = 0;
  for (flash::Ppa p = 0; p < g.pages_total(); ++p) {
    if (!nand.is_programmed(p)) continue;
    ASSERT_EQ(nand.read_page(p, {}, spare), Status::kOk);
    if (ftl::SpareTag::decode(spare).kind != ftl::PageKind::kDataHead) continue;
    const std::uint64_t seq = ftl::DataPageSpare::decode(spare).seq;
    EXPECT_GT(seq, last_seq);  // pages are programmed in seq order here
    last_seq = seq;
  }
  EXPECT_GT(last_seq, 0u);
}

TEST(Recovery, CleanShutdownRestoresEverything) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  std::unordered_map<std::string, std::string> ref;
  Rng rng(3);
  for (int i = 0; i < 800; ++i) {
    const std::string k = "key-" + std::to_string(i);
    const std::string v(rng.next_range(4, 200), static_cast<char>('a' + i % 26));
    ASSERT_EQ(dev->put(key(k), key(v)), Status::kOk);
    ref[k] = v;
  }
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);
  EXPECT_EQ(dev2->key_count(), ref.size());
  for (const auto& [k, v] : ref) {
    Bytes value;
    ASSERT_EQ(dev2->get(key(k), &value), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(value), v);
  }
}

TEST(Recovery, TombstonesKeepDeletionsDurable) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->put(key("keep"), key("v1")), Status::kOk);
  ASSERT_EQ(dev->put(key("drop"), key("v2")), Status::kOk);
  ASSERT_EQ(dev->del(key("drop")), Status::kOk);
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);
  Bytes value;
  EXPECT_EQ(dev2->get(key("keep"), &value), Status::kOk);
  EXPECT_EQ(dev2->get(key("drop"), &value), Status::kNotFound);
  EXPECT_EQ(dev2->key_count(), 1u);
}

TEST(Recovery, NewestVersionWins) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->put(key("k"), key("version-1")), Status::kOk);
  // Push the first version onto flash and far from the update.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(dev->put(key("filler" + std::to_string(i)), key(std::string(200, 'f'))),
              Status::kOk);
  }
  ASSERT_EQ(dev->put(key("k"), key("version-2")), Status::kOk);
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);
  Bytes value;
  ASSERT_EQ(dev2->get(key("k"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "version-2");
}

TEST(Recovery, DeleteThenReinsertRecoversNewValue) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->put(key("x"), key("old")), Status::kOk);
  ASSERT_EQ(dev->del(key("x")), Status::kOk);
  ASSERT_EQ(dev->put(key("x"), key("new")), Status::kOk);
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);
  Bytes value;
  ASSERT_EQ(dev2->get(key("x"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "new");
}

TEST(Recovery, UnflushedWriteBufferIsLost) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->put(key("durable"), key(std::string(300, 'd'))), Status::kOk);
  ASSERT_EQ(dev->flush(), Status::kOk);
  // This small pair stays in the RAM write buffer — gone on power loss.
  ASSERT_EQ(dev->put(key("volatile"), key("ram-only")), Status::kOk);
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/false);
  Bytes value;
  EXPECT_EQ(dev2->get(key("durable"), &value), Status::kOk);
  EXPECT_EQ(dev2->get(key("volatile"), &value), Status::kNotFound);
}

TEST(Recovery, SurvivesGcBeforeCrash) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  std::unordered_map<std::string, std::string> ref;
  Rng rng(5);
  // Churn hard enough to cycle GC several times, with deletions.
  for (int step = 0; step < 16000; ++step) {
    const std::string k = "c" + std::to_string(rng.next_below(150));
    if (rng.next_below(10) < 8) {
      const std::string v(rng.next_range(100, 1500), static_cast<char>('a' + step % 26));
      ASSERT_EQ(dev->put(key(k), key(v)), Status::kOk) << step;
      ref[k] = v;
    } else if (ref.count(k)) {
      ASSERT_EQ(dev->del(key(k)), Status::kOk);
      ref.erase(k);
    }
  }
  ASSERT_GT(dev->gc().stats().blocks_reclaimed, 0u);
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);
  EXPECT_EQ(dev2->key_count(), ref.size());
  for (const auto& [k, v] : ref) {
    Bytes value;
    ASSERT_EQ(dev2->get(key(k), &value), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(value), v);
  }
}

TEST(Recovery, DeviceRemainsFullyOperationalAfterRecovery) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(dev->put(key("pre" + std::to_string(i)), key(std::string(100, 'p'))),
              Status::kOk);
  }
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);
  // Writes, updates, deletes and GC all work on the adopted flash. The
  // churn exceeds the 8 MiB device several times over, forcing GC.
  for (int i = 0; i < 12000; ++i) {
    ASSERT_EQ(dev2->put(key("post" + std::to_string(i % 300)),
                        key(std::string(800, 'q'))),
              Status::kOk)
        << i;
  }
  Bytes value;
  EXPECT_EQ(dev2->get(key("pre42"), &value), Status::kOk);
  EXPECT_EQ(dev2->del(key("pre42")), Status::kOk);
  EXPECT_EQ(dev2->get(key("pre42"), &value), Status::kNotFound);
  EXPECT_GT(dev2->gc().stats().blocks_reclaimed, 0u);
}

TEST(Recovery, DoublePowerCycle) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->put(key("a"), key("1")), Status::kOk);
  auto dev2 = power_cycle(std::move(dev), true);
  ASSERT_EQ(dev2->put(key("b"), key("2")), Status::kOk);
  ASSERT_EQ(dev2->del(key("a")), Status::kOk);
  auto dev3 = power_cycle(std::move(dev2), true);
  Bytes value;
  EXPECT_EQ(dev3->get(key("a"), &value), Status::kNotFound);
  ASSERT_EQ(dev3->get(key("b"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "2");
}

TEST(Recovery, MismatchedGeometryRejected) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->flush(), Status::kOk);
  auto nand = dev->release_nand();
  DeviceConfig other = small_config();
  other.geometry = flash::Geometry::tiny(64);  // different capacity
  auto recovered = KvssdDevice::recover(other, std::move(nand));
  EXPECT_FALSE(recovered.has_value());
  EXPECT_EQ(recovered.status(), Status::kInvalidArgument);
  auto null_recover = KvssdDevice::recover(small_config(), nullptr);
  EXPECT_EQ(null_recover.status(), Status::kInvalidArgument);
}

TEST(Recovery, StatsReportScanResults) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(dev->put(key("s" + std::to_string(i)), key(std::string(50, 's'))),
              Status::kOk);
  }
  ASSERT_EQ(dev->del(key("s0")), Status::kOk);
  ASSERT_EQ(dev->flush(), Status::kOk);
  auto nand = dev->release_nand();

  SimClock clock;
  nand->rebind_clock(&clock);
  ftl::PageAllocator alloc(nand.get(), 4);
  ftl::FlashKvStore store(nand.get(), &alloc);
  index::RhikIndex index(nand.get(), &alloc, {}, 1 << 20);
  auto stats = recover_from_flash(*nand, alloc, store, index);
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->keys_recovered, 299u);
  EXPECT_GE(stats->tombstones_seen, 1u);
  EXPECT_GT(stats->blocks_adopted, 0u);
  EXPECT_GT(stats->max_seq, 0u);
  EXPECT_EQ(store.next_seq(), stats->max_seq + 1);
  EXPECT_EQ(index.size(), 299u);
  // Every adopted block's wear came back from its page-0 spare stamp.
  EXPECT_EQ(stats->wear_blocks_restored, stats->blocks_adopted);
  EXPECT_EQ(stats->torn_pages_dropped, 0u);  // clean shutdown: nothing torn
}

TEST(Recovery, MultiPageExtentLivenessSurvivesGc) {
  // Regression for extent liveness accounting: a value spanning several
  // pages must credit every page's block, or pick_victim can erase
  // continuation pages out from under the live extent after recovery.
  auto dev = std::make_unique<KvssdDevice>(small_config());
  const std::string big(9000, 'B');  // head + 3 continuation pages @4KiB
  ASSERT_EQ(dev->put(key("big"), key(big)), Status::kOk);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(dev->put(key("f" + std::to_string(i)), key(std::string(200, 'f'))),
              Status::kOk);
  }
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/true);

  // Churn far past capacity so GC cycles every reclaimable block.
  for (int i = 0; i < 14000; ++i) {
    ASSERT_EQ(dev2->put(key("churn" + std::to_string(i % 200)),
                        key(std::string(700, 'c'))),
              Status::kOk)
        << i;
  }
  ASSERT_GT(dev2->gc().stats().blocks_reclaimed, 0u);
  Bytes value;
  ASSERT_EQ(dev2->get(key("big"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), big);
}

TEST(Recovery, GcRelocatedTombstoneStaysDeletedAfterRecovery) {
  // A tombstone whose signature has no newer version must survive BOTH
  // GC relocation and the subsequent recovery replay — if GC dropped it,
  // the stale pre-delete pair still on flash would resurrect the key.
  auto dev = std::make_unique<KvssdDevice>(small_config());
  ASSERT_EQ(dev->put(key("dead"), key(std::string(100, 'd'))), Status::kOk);
  // Live neighbours keep the pre-delete pair's block OFF the victim list.
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(dev->put(key("keep" + std::to_string(i)), key(std::string(800, 'k'))),
              Status::kOk);
  }
  ASSERT_EQ(dev->flush(), Status::kOk);

  ASSERT_EQ(dev->del(key("dead")), Status::kOk);  // tombstone, no newer version
  // Surround the tombstone with pairs, then stale them all out with
  // overwrites: the tombstone's block becomes the min-live victim.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(dev->put(key("s" + std::to_string(i)), key(std::string(300, '1'))),
              Status::kOk);
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(dev->put(key("s" + std::to_string(i)), key(std::string(300, '2'))),
              Status::kOk);
  }
  ASSERT_EQ(dev->flush(), Status::kOk);

  // Collect until data pairs were actually relocated (early victims may
  // be zero-live stale index blocks).
  const std::uint64_t relocated_before = dev->gc().stats().pairs_relocated;
  for (int i = 0; i < 30 && dev->gc().stats().pairs_relocated == relocated_before;
       ++i) {
    if (!ok(dev->gc().collect_one())) break;
  }
  ASSERT_GT(dev->gc().stats().blocks_reclaimed, 0u);
  ASSERT_GT(dev->gc().stats().pairs_relocated, relocated_before);

  // Abrupt power loss: GC's own flush-before-erase must have made the
  // relocated tombstone durable; no explicit flush here.
  auto nand = dev->release_nand();
  dev.reset();
  RecoveryStats stats;
  auto recovered = KvssdDevice::recover(small_config(), std::move(nand), &stats);
  ASSERT_TRUE(recovered.has_value());
  auto& dev2 = **recovered;
  EXPECT_GE(stats.tombstones_seen, 1u);
  Bytes value;
  EXPECT_EQ(dev2.get(key("dead"), &value), Status::kNotFound);
  EXPECT_EQ(dev2.get(key("keep7"), &value), Status::kOk);
  // The key is re-insertable after its tombstone won.
  ASSERT_EQ(dev2.put(key("dead"), key("reborn")), Status::kOk);
  ASSERT_EQ(dev2.get(key("dead"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "reborn");
}

TEST(Recovery, WearCountsRestoredFromSpareStamps) {
  auto dev = std::make_unique<KvssdDevice>(small_config());
  Rng rng(11);
  // Churn past capacity so GC erases blocks and wear accumulates.
  for (int i = 0; i < 16000; ++i) {
    ASSERT_EQ(dev->put(key("w" + std::to_string(rng.next_below(120))),
                       key(std::string(rng.next_range(200, 900), 'w'))),
              Status::kOk)
        << i;
  }
  ASSERT_EQ(dev->flush(), Status::kOk);

  const auto& g = dev->nand().geometry();
  std::unordered_map<std::uint32_t, std::uint32_t> expected;
  std::uint32_t worn_blocks = 0;
  for (std::uint32_t b = 0; b < g.num_blocks; ++b) {
    if (dev->nand().pages_programmed(b) == 0) continue;
    expected[b] = dev->nand().erase_count(b);
    worn_blocks += expected[b] > 0;
  }
  ASSERT_GT(worn_blocks, 0u);  // the churn really recycled blocks

  // recover() power-cycles the array: the wear RAM is wiped, then
  // re-derived from the per-block spare stamps during the scan. Blocks
  // with nothing live get swept (erased) right after their stamp is
  // restored, so they come back exactly one erase ahead; blocks still
  // holding live data keep the stamped count.
  auto dev2 = power_cycle(std::move(dev), /*clean_shutdown=*/false);
  std::uint32_t exact = 0;
  for (const auto& [block, count] : expected) {
    const std::uint32_t got = dev2->nand().erase_count(block);
    EXPECT_TRUE(got == count || got == count + 1)
        << "block " << block << ": stamped " << count << ", got " << got;
    exact += got == count;
  }
  EXPECT_GT(exact, 0u);  // live blocks restored their exact stamped wear
}

}  // namespace
}  // namespace rhik::kvssd
