// Seeded differential harness: random op traces executed against a
// plain std::map reference model and the full device — for BOTH index
// schemes (RHIK and the MLHash baseline), under uniform and zipf-skewed
// key distributions, with forced GC quanta, synchronous collections,
// flushes and clean device reopens (full-scan and fast-restore recovery
// paths) interleaved into the trace. MVCC snapshots ride along as an
// oracle: pins capture a full model copy at open time, and every
// read_at must return exactly that view or kSnapshotTooOld — retention
// expiry and pins dropped across a reopen must error, never tear.
//
// On a divergence the failing trace is shrunk by chunk removal to a
// minimal reproducer, written to an artifact file, and the failure
// message carries the seed + artifact path so the exact run can be
// replayed with RHIK_TEST_SEED.
//
// Knobs (env):
//   RHIK_TEST_SEED     base seed override (decimal or 0x-hex)
//   RHIK_DIFF_SEEDS    number of seeds for the matrix test (default 40)
//   RHIK_DIFF_MINUTES  wall-clock budget for the soak test (default 0 =
//                      skipped; the nightly CI job sets it)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hash/hopscotch.hpp"
#include "kvssd/device.hpp"
#include "kvssd/recovery.hpp"
#include "test_seed.hpp"

namespace rhik::kvssd {
namespace {

struct Op {
  enum class Kind : std::uint8_t {
    kPut,
    kDel,
    kGet,
    kExist,
    kFlush,
    kCollect,  // synchronous GC: collect_one()
    kPump,     // one background quantum: GC + index-migration drain
    kReopen,   // clean close + recover (no fault): full differential check
    kSnapOpen,     // pin a snapshot + capture a model copy (the oracle)
    kSnapRead,     // read_at vs the captured copy; TOO_OLD allowed, tears not
    kSnapRelease,  // release the pin; the handle must be dead afterwards
  };
  Kind kind = Kind::kPut;
  std::uint32_t key = 0;
  std::uint32_t val_len = 0;  ///< kSnapRead/kSnapRelease: snapshot selector
  char fill = 'a';
};

const char* kind_name(Op::Kind k) {
  switch (k) {
    case Op::Kind::kPut: return "put";
    case Op::Kind::kDel: return "del";
    case Op::Kind::kGet: return "get";
    case Op::Kind::kExist: return "exist";
    case Op::Kind::kFlush: return "flush";
    case Op::Kind::kCollect: return "collect";
    case Op::Kind::kPump: return "pump";
    case Op::Kind::kReopen: return "reopen";
    case Op::Kind::kSnapOpen: return "snap_open";
    case Op::Kind::kSnapRead: return "snap_read";
    case Op::Kind::kSnapRelease: return "snap_release";
  }
  return "?";
}

struct DiffConfig {
  IndexKind index = IndexKind::kRhik;
  bool zipf = false;        ///< skewed vs uniform key picks
  bool checkpoint = false;  ///< reopen takes the fast-restore path
};

DeviceConfig device_config(const DiffConfig& dc) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(64);
  cfg.dram_cache_bytes = 32 * 1024;
  cfg.index_kind = dc.index;
  // Small retention budget: zipf churn against pinned snapshots must be
  // able to trip oldest-pin expiry, so the oracle exercises the
  // kSnapshotTooOld path, not just happy-path reads.
  cfg.snapshot_retention_bytes = 48 * 1024;
  if (dc.checkpoint) {
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.slot_blocks = 2;
    cfg.checkpoint.journal_blocks = 2;
    cfg.checkpoint.dirty_pages = 48;
    cfg.checkpoint.pump_pages = 4;
  }
  return cfg;
}

std::string key_str(std::uint32_t k) { return "dk" + std::to_string(k); }

std::vector<Op> generate_trace(std::uint64_t seed, bool zipf, int nops) {
  Rng rng(seed);
  const std::uint32_t universe = 300;  // enough distinct keys to force
                                       // live directory resizes
  std::vector<Op> trace;
  trace.reserve(static_cast<std::size_t>(nops));
  const auto pick_key = [&]() -> std::uint32_t {
    if (!zipf) return rng.next_below(universe);
    // Power-law-ish skew: cubing the uniform draw concentrates ~90% of
    // the mass on the low ranks, approximating a zipf hot set.
    const double u = static_cast<double>(rng.next_below(1 << 20)) / (1 << 20);
    return static_cast<std::uint32_t>(u * u * u * universe);
  };
  for (int i = 0; i < nops; ++i) {
    Op op;
    const std::uint32_t dice = rng.next_below(100);
    if (dice < 48) {
      op.kind = Op::Kind::kPut;
      op.key = pick_key();
      // Mostly small values; ~2% multi-page extents.
      op.val_len = rng.next_below(100) < 2 ? rng.next_range(5000, 11000)
                                           : rng.next_range(20, 900);
      op.fill = static_cast<char>('a' + rng.next_below(26));
    } else if (dice < 60) {
      op.kind = Op::Kind::kDel;
      op.key = pick_key();
    } else if (dice < 80) {
      op.kind = Op::Kind::kGet;
      op.key = pick_key();
    } else if (dice < 84) {
      op.kind = Op::Kind::kExist;
      op.key = pick_key();
    } else if (dice < 87) {
      op.kind = Op::Kind::kFlush;
    } else if (dice < 90) {
      op.kind = Op::Kind::kCollect;
    } else if (dice < 94) {
      op.kind = Op::Kind::kPump;
    } else if (dice < 96) {
      op.kind = Op::Kind::kReopen;
    } else if (dice < 97) {
      op.kind = Op::Kind::kSnapOpen;
    } else if (dice < 99) {
      op.kind = Op::Kind::kSnapRead;
      op.key = pick_key();
      op.val_len = rng.next_below(16);  // snapshot selector
    } else {
      op.kind = Op::Kind::kSnapRelease;
      op.val_len = rng.next_below(16);
    }
    trace.push_back(op);
  }
  return trace;
}

/// Runs a trace against a fresh device + reference model. Returns a
/// divergence description ("" prefix-free) or nullopt when the run and
/// the final sweep agree everywhere.
std::optional<std::string> run_trace(const DiffConfig& dc,
                                     const std::vector<Op>& trace) {
  const DeviceConfig cfg = device_config(dc);
  auto dev = std::make_unique<KvssdDevice>(cfg);
  std::map<std::string, std::string> model;

  // Snapshot oracle: each open pin carries a full copy of the model at
  // open time. A read through the handle must return exactly that view,
  // or kSnapshotTooOld (retention expiry / pin dropped across a power
  // cycle) — anything else is a torn snapshot. Once a handle has been
  // seen dead it must stay dead.
  struct SnapOracle {
    api::SnapshotHandle handle;
    std::map<std::string, std::string> view;
    bool dead = false;
  };
  std::vector<SnapOracle> snaps;

  const auto fail = [](std::size_t i, const Op& op, const std::string& what) {
    std::ostringstream os;
    os << "op " << i << " (" << kind_name(op.kind) << " key=" << op.key
       << "): " << what;
    return os.str();
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Op& op = trace[i];
    const std::string k = key_str(op.key);
    switch (op.kind) {
      case Op::Kind::kPut: {
        const std::string v(op.val_len, op.fill);
        const Status s = dev->put(as_bytes(k), as_bytes(v));
        if (s != Status::kOk) {
          return fail(i, op, "put returned " + std::to_string(int(s)));
        }
        model[k] = v;
        break;
      }
      case Op::Kind::kDel: {
        const Status s = dev->del(as_bytes(k));
        const bool present = model.count(k) != 0;
        if (present && s != Status::kOk) {
          return fail(i, op, "del of present key failed");
        }
        if (!present && s != Status::kNotFound) {
          return fail(i, op, "del of absent key did not return kNotFound");
        }
        model.erase(k);
        break;
      }
      case Op::Kind::kGet: {
        Bytes value;
        const Status s = dev->get(as_bytes(k), &value);
        const auto it = model.find(k);
        if (it == model.end()) {
          if (s != Status::kNotFound) {
            return fail(i, op, "get of absent key did not return kNotFound");
          }
        } else if (s != Status::kOk) {
          return fail(i, op, "get of present key failed");
        } else if (rhik::to_string(value) != it->second) {
          return fail(i, op, "value mismatch (" +
                                 std::to_string(value.size()) + " vs " +
                                 std::to_string(it->second.size()) + " bytes)");
        }
        break;
      }
      case Op::Kind::kExist: {
        const Status s = dev->exist(as_bytes(k));
        const bool present = model.count(k) != 0;
        if (present != (s == Status::kOk)) {
          return fail(i, op, "exist disagrees with model");
        }
        break;
      }
      case Op::Kind::kFlush:
        if (dev->flush() != Status::kOk) return fail(i, op, "flush failed");
        break;
      case Op::Kind::kCollect: {
        const Status s = dev->gc().collect_one();
        if (s != Status::kOk && s != Status::kDeviceFull) {
          return fail(i, op, "collect_one returned " + std::to_string(int(s)));
        }
        break;
      }
      case Op::Kind::kPump:
        (void)dev->pump_background();
        break;
      case Op::Kind::kReopen: {
        // Clean shutdown: everything acked is flushed, so recovery (fast
        // restore with checkpointing, full scan without) must reproduce
        // the model exactly.
        if (dev->flush() != Status::kOk) return fail(i, op, "flush failed");
        auto nand = dev->release_nand();
        dev.reset();
        auto recovered = KvssdDevice::recover(cfg, std::move(nand));
        if (!recovered) return fail(i, op, "recovery failed");
        dev = std::move(*recovered);
        // Pins are in-memory state and did not survive: every handle
        // still held must error from here on — never resolve to a view
        // at the wrong epoch, even if its pin id gets recycled.
        for (SnapOracle& so : snaps) {
          Bytes value;
          if (dev->read_at(so.handle, as_bytes(key_str(0)), &value) !=
              Status::kSnapshotTooOld) {
            return fail(i, op, "pin survived power cycle with a view");
          }
          so.dead = true;
        }
        for (const auto& [mk, mv] : model) {
          Bytes value;
          if (dev->get(as_bytes(mk), &value) != Status::kOk) {
            return fail(i, op, "key " + mk + " lost across reopen");
          }
          if (rhik::to_string(value) != mv) {
            return fail(i, op, "key " + mk + " mangled across reopen");
          }
        }
        break;
      }
      case Op::Kind::kSnapOpen: {
        if (snaps.size() >= 8) break;  // bound how much retention we pin
        auto snap = dev->open_snapshot();
        if (!snap) return fail(i, op, "open_snapshot failed");
        snaps.push_back(SnapOracle{*snap, model, false});
        break;
      }
      case Op::Kind::kSnapRead: {
        if (snaps.empty()) break;
        SnapOracle& so = snaps[op.val_len % snaps.size()];
        Bytes value;
        const Status s = dev->read_at(so.handle, as_bytes(k), &value);
        if (so.dead) {
          if (s != Status::kSnapshotTooOld) {
            return fail(i, op, "dead snapshot resurrected (status " +
                                   std::to_string(int(s)) + ")");
          }
          break;
        }
        if (s == Status::kSnapshotTooOld) {
          // The retention budget expired the pin — legal, and one-way.
          so.dead = true;
          break;
        }
        const auto it = so.view.find(k);
        if (it == so.view.end()) {
          if (s != Status::kNotFound) {
            return fail(i, op, "snapshot saw a key absent at pin time");
          }
        } else if (s != Status::kOk) {
          return fail(i, op, "snapshot lost a pinned key (status " +
                                 std::to_string(int(s)) + ")");
        } else if (rhik::to_string(value) != it->second) {
          return fail(i, op, "snapshot TORE: got " +
                                 std::to_string(value.size()) + " bytes, " +
                                 "pinned view has " +
                                 std::to_string(it->second.size()));
        }
        break;
      }
      case Op::Kind::kSnapRelease: {
        if (snaps.empty()) break;
        const std::size_t pick = op.val_len % snaps.size();
        SnapOracle& so = snaps[pick];
        const Status s = dev->release_snapshot(so.handle);
        // Valid and retention-expired pins release kOk; handles dropped
        // across a reopen answer kSnapshotTooOld (unknown/recycled id).
        if (!so.dead && s != Status::kOk) {
          return fail(i, op, "release of live pin returned " +
                                 std::to_string(int(s)));
        }
        if (so.dead && s != Status::kOk && s != Status::kSnapshotTooOld) {
          return fail(i, op, "release of dead pin returned " +
                                 std::to_string(int(s)));
        }
        // A released handle is dead for good.
        Bytes value;
        if (dev->read_at(so.handle, as_bytes(key_str(0)), &value) !=
            Status::kSnapshotTooOld) {
          return fail(i, op, "released handle still readable");
        }
        snaps.erase(snaps.begin() + static_cast<std::ptrdiff_t>(pick));
        break;
      }
    }
  }

  // Final sweep: the device must agree with the model on every key of
  // the universe, present or absent.
  for (std::uint32_t k = 0; k < 300; ++k) {
    const std::string ks = key_str(k);
    Bytes value;
    const Status s = dev->get(as_bytes(ks), &value);
    const auto it = model.find(ks);
    if (it == model.end()) {
      if (s != Status::kNotFound) {
        return "final sweep: absent key " + ks + " readable";
      }
    } else if (s != Status::kOk || rhik::to_string(value) != it->second) {
      return "final sweep: key " + ks + " wrong or missing";
    }
  }
  return std::nullopt;
}

/// Chunk-removal shrink (ddmin-style): repeatedly tries dropping spans
/// of the trace, keeping any reduction that still reproduces a
/// divergence, until no half/quarter/... removal helps.
std::vector<Op> shrink_trace(const DiffConfig& dc, std::vector<Op> trace) {
  int budget = 400;  // executions, not iterations — shrinking is bounded
  std::size_t chunk = trace.size() / 2;
  while (chunk > 0 && budget > 0) {
    bool reduced = false;
    for (std::size_t start = 0; start + chunk <= trace.size() && budget > 0;) {
      std::vector<Op> candidate;
      candidate.reserve(trace.size() - chunk);
      candidate.insert(candidate.end(), trace.begin(),
                       trace.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       trace.begin() + static_cast<std::ptrdiff_t>(start + chunk),
                       trace.end());
      --budget;
      if (run_trace(dc, candidate).has_value()) {
        trace = std::move(candidate);  // still fails: keep the reduction
        reduced = true;
      } else {
        start += chunk;
      }
    }
    if (!reduced) chunk /= 2;
  }
  return trace;
}

/// Writes the minimal reproducer to disk and returns its path.
std::string write_artifact(std::uint64_t seed, const DiffConfig& dc,
                           const std::vector<Op>& trace,
                           const std::string& divergence) {
  const std::string path =
      "rhik_diff_failure_" + std::to_string(seed) + ".txt";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "seed: %llu\nindex: %s\nzipf: %d\ncheckpoint: %d\n",
                 static_cast<unsigned long long>(seed),
                 dc.index == IndexKind::kRhik ? "rhik" : "mlhash",
                 dc.zipf ? 1 : 0, dc.checkpoint ? 1 : 0);
    std::fprintf(f, "divergence: %s\nops (%zu):\n", divergence.c_str(),
                 trace.size());
    for (const Op& op : trace) {
      std::fprintf(f, "  %s key=%u val_len=%u fill=%c\n", kind_name(op.kind),
                   op.key, op.val_len, op.fill);
    }
    std::fclose(f);
  }
  return path;
}

/// One full differential check for one seed: generate, run against both
/// index schemes, shrink + dump on divergence.
void check_seed(std::uint64_t seed) {
  const bool zipf = (seed >> 1) & 1;
  const bool checkpoint = (seed >> 2) & 1;
  const std::vector<Op> trace = generate_trace(seed, zipf, 1200);
  for (const IndexKind index : {IndexKind::kRhik, IndexKind::kMlHash}) {
    const DiffConfig dc{index, zipf, checkpoint};
    const auto divergence = run_trace(dc, trace);
    if (!divergence) continue;
    const std::vector<Op> minimal = shrink_trace(dc, trace);
    const auto confirmed = run_trace(dc, minimal);
    const std::string path = write_artifact(
        seed, dc, minimal, confirmed.value_or(*divergence));
    FAIL() << "differential divergence (seed 0x" << std::hex << seed
           << std::dec << ", index="
           << (index == IndexKind::kRhik ? "rhik" : "mlhash")
           << ", zipf=" << zipf << ", checkpoint=" << checkpoint
           << "): " << confirmed.value_or(*divergence) << "\nminimal trace ("
           << minimal.size() << " ops) written to " << path
           << "\nreplay: RHIK_TEST_SEED=" << seed;
  }
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 0);
    if (end != env) return v;
  }
  return fallback;
}

TEST(Differential, SeededTraceMatrix) {
  const std::uint64_t base = rhik::test::harness_seed(0xD1FF0000);
  const std::uint64_t seeds = env_u64("RHIK_DIFF_SEEDS", 40);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    check_seed(base + i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Differential, TimeBudgetSoak) {
  // The nightly CI job sets RHIK_DIFF_MINUTES and lets this run fresh
  // seeds until the budget is spent; locally it is skipped by default.
  const std::uint64_t minutes = env_u64("RHIK_DIFF_MINUTES", 0);
  if (minutes == 0) GTEST_SKIP() << "set RHIK_DIFF_MINUTES to enable";
  const std::uint64_t base = rhik::test::harness_seed(
      static_cast<std::uint64_t>(
          std::chrono::system_clock::now().time_since_epoch().count()));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::minutes(minutes);
  std::uint64_t ran = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    check_seed(base + ran);
    ++ran;
    if (::testing::Test::HasFatalFailure()) break;
  }
  std::printf("[soak] %llu seeds checked (base 0x%llx)\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(base));
}

}  // namespace
}  // namespace rhik::kvssd

// -- SIMD vs scalar probe equivalence ------------------------------------------
// Mirrored mutation sequences applied to two tables, one probing with
// the vectorised backend and one with the runtime kill-switch thrown,
// must keep bit-identical table state (slots, occupancy, hopinfo) and
// return identical statuses/results. On a scalar build both halves run
// the same code and the test passes trivially; on SSE2/AVX2 builds it
// pins the dispatch seam.
namespace rhik::hash {
namespace {

/// RAII guard: the kill-switch is process-global state shared with other
/// tests in this binary.
struct SimdSwitchGuard {
  bool saved = HopscotchTable::simd_enabled();
  ~SimdSwitchGuard() { HopscotchTable::set_simd_enabled(saved); }
};

void expect_identical(const HopscotchTable& a, const HopscotchTable& b) {
  ASSERT_EQ(a.capacity(), b.capacity());
  ASSERT_EQ(a.size(), b.size());
  for (std::uint32_t i = 0; i < a.capacity(); ++i) {
    ASSERT_EQ(a.slot_used(i), b.slot_used(i)) << "slot " << i;
    if (a.slot_used(i)) {
      ASSERT_EQ(a.slot(i).sig, b.slot(i).sig) << "slot " << i;
      ASSERT_EQ(a.slot(i).ppa, b.slot(i).ppa) << "slot " << i;
    }
    ASSERT_EQ(a.hopinfo(i), b.hopinfo(i)) << "bucket " << i;
  }
}

/// Applies one mutation to both tables — vectorised probe for `simd`,
/// scalar for `scalar` — and asserts statuses, invariants and state
/// stay in lockstep.
class MirroredTables {
 public:
  MirroredTables(std::uint32_t capacity, std::uint32_t hop_range)
      : simd_(capacity, hop_range), scalar_(capacity, hop_range) {}

  void insert(std::uint64_t sig, std::uint64_t ppa) {
    HopscotchTable::set_simd_enabled(true);
    const Status a = simd_.insert(sig, ppa);
    HopscotchTable::set_simd_enabled(false);
    const Status b = scalar_.insert(sig, ppa);
    ASSERT_EQ(a, b) << "insert status diverged for sig 0x" << std::hex << sig;
    check_both();
  }

  void erase(std::uint64_t sig) {
    HopscotchTable::set_simd_enabled(true);
    const bool a = simd_.erase(sig);
    HopscotchTable::set_simd_enabled(false);
    const bool b = scalar_.erase(sig);
    ASSERT_EQ(a, b) << "erase result diverged for sig 0x" << std::hex << sig;
    check_both();
  }

  void find(std::uint64_t sig) {
    HopscotchTable::set_simd_enabled(true);
    const auto a = simd_.find(sig);
    HopscotchTable::set_simd_enabled(false);
    const auto b = scalar_.find(sig);
    ASSERT_EQ(a.has_value(), b.has_value())
        << "find diverged for sig 0x" << std::hex << sig;
    if (a.has_value()) {
      ASSERT_EQ(*a, *b);
    }
  }

  void check_both() {
    ASSERT_TRUE(simd_.check_invariants());
    ASSERT_TRUE(scalar_.check_invariants());
    expect_identical(simd_, scalar_);
  }

  [[nodiscard]] const HopscotchTable& table() const noexcept { return simd_; }

 private:
  HopscotchTable simd_;
  HopscotchTable scalar_;
};

TEST(Differential, SimdScalarRandomizedTables) {
  SimdSwitchGuard guard;
  // (capacity, hop range): the default record-page geometry, a tiny
  // table where every neighbourhood wraps past the tail, and a mid-size
  // power of two. Ops per geometry stay modest because every mutation
  // pays a full invariant check + state diff.
  struct Geometry { std::uint32_t capacity, hop_range; };
  for (const Geometry g : {Geometry{1927, 32}, {33, 32}, {64, 8}, {128, 32}}) {
    MirroredTables t(g.capacity, g.hop_range);
    Rng rng(rhik::test::harness_seed(0x51DD0000) ^ g.capacity);
    std::vector<std::uint64_t> live;
    for (int op = 0; op < 600; ++op) {
      const std::uint32_t dice = static_cast<std::uint32_t>(rng.next_below(10));
      if (dice < 6 || live.empty()) {
        const std::uint64_t sig = rng.next();
        t.insert(sig, rng.next_below(1u << 20));
        if (::testing::Test::HasFatalFailure()) return;
        live.push_back(sig);
      } else if (dice < 8) {
        const std::size_t pick = rng.next_below(live.size());
        t.erase(live[pick]);
        if (::testing::Test::HasFatalFailure()) return;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Mix of resident and (almost surely) absent signatures.
        t.find(live[rng.next_below(live.size())]);
        t.find(rng.next());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    // Erase-then-find over everything still resident.
    for (const std::uint64_t sig : live) {
      t.find(sig);
      if (::testing::Test::HasFatalFailure()) return;
    }
    for (const std::uint64_t sig : live) {
      t.erase(sig);
      t.find(sig);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Differential, SimdScalarDisplacementChains) {
  SimdSwitchGuard guard;
  // Duplicate-home displacement chains: rejection-sample signatures
  // sharing one home bucket and insert until the neighbourhood aborts;
  // both probe paths must agree on every status along the way — near
  // the table head and at the tail, where the neighbourhood wraps.
  constexpr std::uint32_t kCapacity = 33;
  constexpr std::uint32_t kHopRange = 32;
  const HopscotchTable ref(kCapacity, kHopRange);
  Rng rng(rhik::test::harness_seed(0xD15C0000));
  for (const std::uint32_t target :
       {std::uint32_t{1}, kCapacity / 2, kCapacity - 1}) {
    MirroredTables t(kCapacity, kHopRange);
    std::vector<std::uint64_t> homed;
    while (homed.size() < 40) {
      const std::uint64_t sig = rng.next();
      if (ref.home_bucket(sig) == target) homed.push_back(sig);
    }
    for (std::size_t i = 0; i < homed.size(); ++i) {
      t.insert(homed[i], i);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Updates of keys that survived, finds of ones the abort rejected.
    for (std::size_t i = 0; i < homed.size(); ++i) {
      t.insert(homed[i], 1000 + i);
      t.find(homed[i]);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Tear the chain down out of insertion order.
    for (std::size_t i = homed.size(); i-- > 0;) {
      t.erase(homed[i]);
      t.find(homed[i]);
      if (::testing::Test::HasFatalFailure()) return;
    }
    ASSERT_EQ(t.table().size(), 0u);
  }
}

}  // namespace
}  // namespace rhik::hash
