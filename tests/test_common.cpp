// Unit tests for src/common: status/result, simulated clock, histogram,
// RNG/zipfian, and byte encoding helpers.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/status.hpp"

namespace rhik {
namespace {

TEST(Status, NamesAreStable) {
  EXPECT_EQ(to_string(Status::kOk), "OK");
  EXPECT_EQ(to_string(Status::kNotFound), "NOT_FOUND");
  EXPECT_EQ(to_string(Status::kCollisionAbort), "COLLISION_ABORT");
  EXPECT_EQ(to_string(Status::kDeviceFull), "DEVICE_FULL");
}

TEST(Status, OkPredicate) {
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kIoError));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::kOk);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::kNotFound);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.status(), Status::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r);
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(5 * kMicrosecond);
  clock.advance(3 * kMillisecond);
  EXPECT_EQ(clock.now(), 5 * kMicrosecond + 3 * kMillisecond);
  EXPECT_EQ(clock.total_stall(), 0u);
}

TEST(SimClock, StallTracking) {
  SimClock clock;
  clock.advance_stall(2 * kMillisecond);
  clock.advance(kMillisecond);
  EXPECT_EQ(clock.total_stall(), 2 * kMillisecond);
  EXPECT_EQ(clock.now(), 3 * kMillisecond);
}

TEST(SimClock, StallWindowReclassifies) {
  SimClock clock;
  clock.advance(kSecond);
  const SimTime begin = clock.stall_window_begin();
  clock.advance(7 * kMillisecond);
  clock.stall_window_end(begin);
  EXPECT_EQ(clock.total_stall(), 7 * kMillisecond);
  EXPECT_EQ(clock.now(), kSecond + 7 * kMillisecond);
}

TEST(SimClock, Reset) {
  SimClock clock;
  clock.advance_stall(kSecond);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.total_stall(), 0u);
}

TEST(SimClock, RateHelpers) {
  // 1 MiB in 1 second = 1 MiB/s.
  EXPECT_DOUBLE_EQ(mib_per_sec(1 << 20, kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ops_per_sec(1000, kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(mib_per_sec(123, 0), 0.0);
  EXPECT_DOUBLE_EQ(ops_per_sec(123, 0), 0.0);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 99u);
  EXPECT_NEAR(h.mean(), 49.5, 1e-9);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
}

TEST(Histogram, LargeValuesApproximate) {
  Histogram h;
  h.record(1'000'000);
  h.record(2'000'000);
  h.record(4'000'000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 4'000'000u);
  // p100 lands in the top bucket; bounded relative error.
  EXPECT_NEAR(h.percentile(100), 4'000'000.0, 4'000'000.0 / 8);
}

TEST(Histogram, CdfMonotone) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(static_cast<std::uint64_t>(i % 10));
  EXPECT_DOUBLE_EQ(h.cdf(9), 1.0);
  EXPECT_NEAR(h.cdf(4), 0.5, 0.01);
  EXPECT_LE(h.cdf(2), h.cdf(5));
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(1);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100u);
}

TEST(Histogram, RecordNWeighted) {
  Histogram h;
  h.record_n(5, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundsRespected) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[rng.next_below(8)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Zipfian, SkewsTowardHead) {
  Rng rng(5);
  Zipfian zipf(10000, 0.99);
  std::map<std::uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.next(rng)]++;
  // Rank 0 should dominate and all draws stay in range.
  EXPECT_GT(counts[0], n / 20);
  for (const auto& [k, _] : counts) EXPECT_LT(k, 10000u);
  EXPECT_GT(counts[0], counts[100]);
}

TEST(Zipfian, LowThetaFlatter) {
  Rng r1(5), r2(5);
  Zipfian skewed(1000, 0.99), flat(1000, 0.2);
  int head_skewed = 0, head_flat = 0;
  for (int i = 0; i < 50000; ++i) {
    head_skewed += (skewed.next(r1) < 10);
    head_flat += (flat.next(r2) < 10);
  }
  EXPECT_GT(head_skewed, head_flat * 2);
}

TEST(Bytes, FixedWidthRoundTrip) {
  Bytes buf(32, 0);
  put_u16(buf, 0, 0xBEEF);
  put_u32(buf, 2, 0xDEADBEEF);
  put_u64(buf, 6, 0x0123456789ABCDEFull);
  put_u40(buf, 14, 0x1234567890ull);
  EXPECT_EQ(get_u16(buf, 0), 0xBEEF);
  EXPECT_EQ(get_u32(buf, 2), 0xDEADBEEFu);
  EXPECT_EQ(get_u64(buf, 6), 0x0123456789ABCDEFull);
  EXPECT_EQ(get_u40(buf, 14), 0x1234567890ull);
}

TEST(Bytes, U40MaxValue) {
  Bytes buf(5, 0);
  const std::uint64_t max40 = (std::uint64_t{1} << 40) - 1;
  put_u40(buf, 0, max40);
  EXPECT_EQ(get_u40(buf, 0), max40);
}

TEST(Bytes, StringConversion) {
  const std::string s = "hello";
  const ByteSpan span = as_bytes(s);
  EXPECT_EQ(span.size(), 5u);
  EXPECT_EQ(rhik::to_string(span), s);
}

TEST(Bytes, SizeLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648ull);
}

// -- Histogram bucket accessors and JSON export (obs exporter contract) --------

TEST(HistogramBuckets, ExactEdgeBuckets) {
  // Values 0..127 map to their own exact buckets.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(127), 127u);
  EXPECT_EQ(Histogram::bucket_lower(127), 127u);
  EXPECT_EQ(Histogram::bucket_upper(127), 127u);
  // 128 is the first log2-range sub-bucket: no longer exact, but the
  // bucket bounds must still bracket the value.
  const std::size_t b128 = Histogram::bucket_index(128);
  EXPECT_GE(b128, 128u);
  EXPECT_LE(Histogram::bucket_lower(b128), 128u);
  EXPECT_GE(Histogram::bucket_upper(b128), 128u);
}

TEST(HistogramBuckets, TopRangeCoversUint64Max) {
  const std::size_t last = Histogram::bucket_count() - 1;
  const std::size_t top = Histogram::bucket_index(UINT64_MAX);
  EXPECT_LE(top, last);
  EXPECT_LE(Histogram::bucket_lower(top), UINT64_MAX);
  EXPECT_EQ(Histogram::bucket_upper(last), UINT64_MAX);
  // Bounds tile the whole domain: each bucket starts one past the
  // previous bucket's upper bound.
  for (std::size_t b = 1; b < Histogram::bucket_count(); ++b) {
    EXPECT_EQ(Histogram::bucket_lower(b), Histogram::bucket_upper(b - 1) + 1)
        << "bucket " << b;
  }
}

TEST(HistogramBuckets, FromBucketsRoundTrip) {
  Histogram h;
  for (std::uint64_t v = 0; v < 128; ++v) h.record(v);
  h.record(1'000'000);
  h.record(UINT64_MAX);

  std::array<std::uint64_t, Histogram::bucket_count()> counts{};
  for (std::size_t b = 0; b < Histogram::bucket_count(); ++b) {
    counts[b] = h.bucket_value(b);
  }
  const Histogram r = Histogram::from_buckets(counts.data(), counts.size(),
                                              h.sum(), h.min(), h.max());
  EXPECT_EQ(r.count(), h.count());
  EXPECT_EQ(r.min(), h.min());
  EXPECT_EQ(r.max(), h.max());
  EXPECT_DOUBLE_EQ(r.percentile(50), h.percentile(50));
  EXPECT_DOUBLE_EQ(r.percentile(99), h.percentile(99));
}

TEST(HistogramBuckets, FromBucketsEmpty) {
  std::array<std::uint64_t, Histogram::bucket_count()> counts{};
  const Histogram r =
      Histogram::from_buckets(counts.data(), counts.size(), 0, UINT64_MAX, 0);
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.min(), 0u);
  EXPECT_EQ(r.max(), 0u);
}

TEST(HistogramJson, ContainsSummaryAndBuckets) {
  Histogram h;
  h.record(0);
  h.record(127);
  h.record(5000);
  const std::string json = h.to_json();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":0"), std::string::npos);
  EXPECT_NE(json.find("\"max\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // Exact buckets export as [lo,hi,count] with lo == hi.
  EXPECT_NE(json.find("[0,0,1]"), std::string::npos);
  EXPECT_NE(json.find("[127,127,1]"), std::string::npos);
}

TEST(HistogramJson, EmptyHistogram) {
  const std::string json = Histogram().to_json();
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[]"), std::string::npos);
}

}  // namespace
}  // namespace rhik
