// Unit tests for the garbage collector (§IV-B) against a mock index.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "ftl/gc.hpp"

namespace rhik::ftl {
namespace {

using flash::Geometry;
using flash::NandLatency;
using flash::Ppa;

/// Minimal in-RAM index standing in for RHIK during GC unit tests.
class MockIndexHooks : public GcIndexHooks {
 public:
  std::optional<Ppa> gc_lookup(std::uint64_t sig) override {
    auto it = map.find(sig);
    if (it == map.end()) return std::nullopt;
    return it->second;
  }
  Status gc_update_location(std::uint64_t sig, Ppa new_ppa) override {
    map[sig] = new_ppa;
    ++relocations;
    return Status::kOk;
  }
  bool gc_is_live_index_page(Ppa ppa) const override {
    return live_index_pages.count(ppa) != 0;
  }
  Status gc_relocate_index_page(Ppa) override {
    ++index_relocations;
    return Status::kOk;
  }

  std::unordered_map<std::uint64_t, Ppa> map;
  std::unordered_map<Ppa, bool> live_index_pages;
  int relocations = 0;
  int index_relocations = 0;
};

class GcTest : public ::testing::Test {
 protected:
  GcTest()
      : nand_(Geometry::tiny(8), NandLatency::kvemu_defaults(), &clock_),
        alloc_(&nand_, 2),
        store_(&nand_, &alloc_),
        gc_(&nand_, &alloc_, &store_, &hooks_) {}

  /// Writes a pair and registers it in the mock index.
  void put(std::uint64_t sig, const std::string& value) {
    const std::string key = "k" + std::to_string(sig);
    auto ppa = store_.write_pair(sig, as_bytes(key), as_bytes(value));
    ASSERT_TRUE(ppa);
    if (auto it = hooks_.map.find(sig); it != hooks_.map.end()) {
      store_.note_stale(it->second,
                        FlashKvStore::pair_bytes(key.size(), value.size()));
    }
    hooks_.map[sig] = *ppa;
  }

  void del(std::uint64_t sig, std::size_t value_size) {
    const std::string key = "k" + std::to_string(sig);
    const auto it = hooks_.map.find(sig);
    ASSERT_NE(it, hooks_.map.end());
    store_.note_stale(it->second, FlashKvStore::pair_bytes(key.size(), value_size));
    hooks_.map.erase(it);
  }

  SimClock clock_;
  flash::NandDevice nand_;
  PageAllocator alloc_;
  FlashKvStore store_;
  MockIndexHooks hooks_;
  GarbageCollector gc_;
};

TEST_F(GcTest, NothingToCollectInitially) {
  EXPECT_EQ(gc_.collect_one(), Status::kDeviceFull);  // no sealed victim
}

TEST_F(GcTest, ReclaimsFullyStaleBlock) {
  // Fill a block, then delete everything in it.
  const std::string value(400, 'v');
  std::uint64_t sig = 1;
  const std::uint32_t free0 = alloc_.free_blocks();
  while (!alloc_.pick_victim().has_value()) {
    put(sig++, value);
  }
  for (std::uint64_t s = 1; s < sig; ++s) del(s, value.size());

  ASSERT_EQ(gc_.collect_one(), Status::kOk);
  EXPECT_EQ(gc_.stats().blocks_reclaimed, 1u);
  EXPECT_EQ(gc_.stats().pairs_relocated, 0u);  // all stale
  // The reclaimed block is back; at most one block stays open for writes.
  EXPECT_GE(alloc_.free_blocks(), free0 - 1);
}

TEST_F(GcTest, RelocatesLivePairsAndUpdatesIndex) {
  const std::string value(400, 'v');
  std::uint64_t sig = 1;
  while (!alloc_.pick_victim().has_value()) put(sig++, value);
  // Delete every other pair.
  for (std::uint64_t s = 1; s < sig; s += 2) del(s, value.size());

  const auto victim = alloc_.pick_victim();
  ASSERT_TRUE(victim);
  ASSERT_EQ(gc_.collect_one(), Status::kOk);
  EXPECT_GT(gc_.stats().pairs_relocated, 0u);
  EXPECT_GT(hooks_.relocations, 0);

  // Every surviving pair is readable at its (possibly new) location with
  // intact contents.
  for (std::uint64_t s = 2; s < sig; s += 2) {
    const auto it = hooks_.map.find(s);
    ASSERT_NE(it, hooks_.map.end());
    Bytes k, v;
    ASSERT_EQ(store_.read_pair(it->second, s, &k, &v), Status::kOk) << s;
    EXPECT_EQ(rhik::to_string(k), "k" + std::to_string(s));
    EXPECT_EQ(rhik::to_string(v), value);
  }
}

TEST_F(GcTest, RelocatesMultiPageExtents) {
  // A large pair spanning several pages plus stale filler.
  const std::string big(12000, 'B');
  put(100, big);
  const std::string filler(900, 'f');
  std::uint64_t sig = 200;
  while (!alloc_.pick_victim().has_value()) put(sig++, filler);
  for (std::uint64_t s = 200; s < sig; ++s) del(s, filler.size());
  // The big pair must survive relocation of its block.
  ASSERT_EQ(gc_.collect_one(), Status::kOk);
  const auto it = hooks_.map.find(100);
  ASSERT_NE(it, hooks_.map.end());
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(it->second, 100, &k, &v), Status::kOk);
  EXPECT_EQ(v.size(), big.size());
  EXPECT_EQ(rhik::to_string(v), big);
}

TEST_F(GcTest, CollectReachesTargetFreeBlocks) {
  const std::string value(800, 'x');
  std::uint64_t sig = 1;
  // Consume most of the device, then delete everything.
  while (alloc_.free_blocks() > 3) put(sig++, value);
  for (std::uint64_t s = 1; s < sig; ++s) del(s, value.size());
  ASSERT_EQ(store_.flush(), Status::kOk);

  ASSERT_EQ(gc_.collect(6), Status::kOk);
  EXPECT_GE(alloc_.free_blocks(), 6u);
}

TEST_F(GcTest, LiveIndexPagesRelocatedStaleSkipped) {
  // Program index-zone pages directly and mark some live in the mock.
  const auto& g = nand_.geometry();
  Bytes page(g.page_size, 0xAB);
  Bytes spare(g.spare_size(), 0xFF);
  SpareTag{PageKind::kIndexRecord, Stream::kIndex}.encode(spare);
  std::vector<Ppa> pages;
  while (!alloc_.pick_victim().has_value()) {
    auto ppa = alloc_.allocate(Stream::kIndex);
    ASSERT_TRUE(ppa);
    ASSERT_EQ(nand_.program_page(*ppa, page, spare), Status::kOk);
    pages.push_back(*ppa);
  }
  // Mark a third of them live.
  for (std::size_t i = 0; i < pages.size(); i += 3) {
    hooks_.live_index_pages[pages[i]] = true;
  }
  ASSERT_EQ(gc_.collect_one(), Status::kOk);
  EXPECT_EQ(static_cast<std::size_t>(hooks_.index_relocations),
            (pages.size() + 2) / 3);
}

TEST_F(GcTest, StatsTrackWriteAmplification) {
  const std::string value(500, 'w');
  std::uint64_t sig = 1;
  while (!alloc_.pick_victim().has_value()) put(sig++, value);
  // Everything stays live: worst-case relocation.
  ASSERT_EQ(gc_.collect_one(), Status::kOk);
  EXPECT_EQ(gc_.stats().blocks_reclaimed, 1u);
  EXPECT_GT(gc_.stats().bytes_relocated, 0u);
  EXPECT_EQ(store_.stats().gc_pairs_written, gc_.stats().pairs_relocated);
}

TEST_F(GcTest, TombstonesPreservedWhileKeyDeleted) {
  // A tombstone whose signature has no newer version must survive GC
  // (it is the durable deletion record); one superseded by a newer put
  // is dropped.
  ASSERT_TRUE(store_.write_tombstone(501, as_bytes(std::string("kdeleted"))));
  ASSERT_TRUE(store_.write_tombstone(502, as_bytes(std::string("kreborn"))));
  // 502 was re-inserted afterwards: the mock index maps it again.
  put(502, "new-value");
  const std::string filler(700, 'f');
  std::uint64_t sig = 600;
  while (!alloc_.pick_victim().has_value()) put(sig++, filler);
  for (std::uint64_t s = 600; s < sig; ++s) del(s, filler.size());

  const auto relocated_before = gc_.stats().pairs_relocated;
  ASSERT_EQ(gc_.collect_one(), Status::kOk);
  // The deleted key's tombstone was carried forward...
  EXPECT_GT(gc_.stats().pairs_relocated, relocated_before);
  EXPECT_GE(store_.stats().tombstones_written, 3u);  // 2 originals + relocation
  // ...and the reborn key's pair remains readable wherever it lives now.
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(hooks_.map[502], 502, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "new-value");
}

TEST_F(GcTest, CollectReportsNoProgressOnFullyLiveDevice) {
  // Everything stays live: collect() must terminate with kDeviceFull
  // rather than livelock (relocations consume what erases free).
  const std::string value(800, 'L');
  std::uint64_t sig = 1;
  while (alloc_.free_blocks() > 3) put(sig++, value);
  const Status s = gc_.collect(6);
  EXPECT_EQ(s, Status::kDeviceFull);
}

TEST_F(GcTest, ChurnStressKeepsAllLiveDataReadable) {
  Rng rng(13);
  const int key_space = 120;
  std::unordered_map<std::uint64_t, std::string> expect;
  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t sig = 1 + rng.next_below(key_space);
    const std::string value(rng.next_range(50, 1200), static_cast<char>('a' + sig % 26));
    // Update (old version goes stale) or insert.
    if (expect.count(sig)) del(sig, expect[sig].size());
    put(sig, value);
    expect[sig] = value;
    if (alloc_.needs_gc()) {
      ASSERT_EQ(gc_.collect(4), Status::kOk) << "step " << step;
    }
  }
  for (const auto& [sig, value] : expect) {
    const auto it = hooks_.map.find(sig);
    ASSERT_NE(it, hooks_.map.end());
    Bytes k, v;
    ASSERT_EQ(store_.read_pair(it->second, sig, &k, &v), Status::kOk);
    EXPECT_EQ(rhik::to_string(v), value);
  }
  EXPECT_GT(gc_.stats().blocks_reclaimed, 0u);
}

}  // namespace
}  // namespace rhik::ftl
