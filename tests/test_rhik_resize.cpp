// Tests for RHIK's re-configuration (§IV-A2): occupancy-triggered
// doubling, signature-reuse migration, stall accounting, and the §VI
// incremental (real-time) resize extension.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "index/rhik/rhik_index.hpp"
#include "index_test_rig.hpp"

namespace rhik::index {
namespace {

using flash::Geometry;
using flash::NandLatency;
using flash::Ppa;

struct Rig : testutil::IndexRig<RhikIndex, RhikConfig> {
  explicit Rig(RhikConfig cfg = {}, std::uint64_t cache_bytes = 1 << 20,
               std::uint32_t blocks = 512)
      : testutil::IndexRig<RhikIndex, RhikConfig>(cfg, cache_bytes, blocks) {}
};

/// Inserts until the index has performed `target` resizes. Pumps
/// maintenance after every op, standing in for the device background
/// tick that drains incremental migrations (no-op in STW mode).
std::unordered_map<std::uint64_t, std::uint64_t> fill_through_resizes(
    Rig& rig, int target, std::uint64_t seed = 1) {
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(seed);
  while (rig.index.op_stats().resizes < static_cast<std::uint64_t>(target)) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, ref.size()))) ref[sig] = ref.size();
    rig.index.pump_maintenance(0);
  }
  return ref;
}

/// Drains an in-flight migration the way an idle device would.
void drain_migration(Rig& rig) {
  while (rig.index.pump_maintenance(0)) {
  }
}

TEST(RhikResize, TriggersAtOccupancyThreshold) {
  Rig rig;  // dir_bits 0: capacity = 240 (tiny pages)
  EXPECT_EQ(rig.index.dir_bits(), 0u);
  Rng rng(1);
  // Up to 80% of 240 = 192 keys, no resize.
  while (rig.index.size() < 192) {
    rig.index.put(rng.next(), 1);
  }
  EXPECT_EQ(rig.index.op_stats().resizes, 0u);
  // The next insert crosses the threshold and doubles the directory.
  while (rig.index.op_stats().resizes == 0) {
    rig.index.put(rng.next(), 1);
  }
  EXPECT_EQ(rig.index.dir_bits(), 1u);
  EXPECT_EQ(rig.index.capacity(), 2u * 240);
  drain_migration(rig);  // history records at completion
  ASSERT_EQ(rig.index.resize_history().size(), 1u);
  EXPECT_EQ(rig.index.resize_history()[0].capacity_before, 240u);
}

TEST(RhikResize, CustomThresholdHonored) {
  RhikConfig cfg;
  cfg.resize_threshold = 0.5;
  Rig rig(cfg);
  Rng rng(2);
  while (rig.index.op_stats().resizes == 0) rig.index.put(rng.next(), 1);
  drain_migration(rig);
  // Triggered at ~50% of 240, not 80%.
  ASSERT_EQ(rig.index.resize_history().size(), 1u);
  EXPECT_LE(rig.index.resize_history()[0].keys_before, 125u);
}

TEST(RhikResize, AllMappingsSurviveManyDoublings) {
  Rig rig;
  const auto ref = fill_through_resizes(rig, 6);
  EXPECT_GE(rig.index.dir_bits(), 6u);
  EXPECT_EQ(rig.index.size(), ref.size());
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(RhikResize, StallTimeRecordedForStopTheWorld) {
  RhikConfig cfg;
  cfg.incremental_resize = false;  // legacy stop-the-world path
  Rig rig(cfg);
  fill_through_resizes(rig, 3);
  EXPECT_GT(rig.clock.total_stall(), 0u);
  ASSERT_EQ(rig.index.resize_history().size(), 3u);
  // Each doubling migrates ~2x the keys of the previous one, so the
  // duration grows; the *rate* of growth stays bounded (~2 per doubling,
  // i.e. rate-of-change <= ~1 in the paper's Fig. 7 normalization).
  const auto& h = rig.index.resize_history();
  EXPECT_GT(h[1].keys_before, h[0].keys_before);
  EXPECT_GT(h[2].duration_ns, 0u);
}

TEST(RhikResize, ResizeDurationScalesLinearly) {
  RhikConfig cfg;
  cfg.incremental_resize = false;  // duration == stall window in STW mode
  Rig rig(cfg);
  fill_through_resizes(rig, 7);
  const auto& h = rig.index.resize_history();
  ASSERT_GE(h.size(), 7u);
  // Fig. 7's claim: time-to-double grows proportionally to index size
  // (rate of change ~<= 1). Compare growth factors of the last doublings.
  for (std::size_t i = 4; i < h.size(); ++i) {
    const double key_growth = static_cast<double>(h[i].keys_before) /
                              static_cast<double>(h[i - 1].keys_before);
    const double time_growth = static_cast<double>(h[i].duration_ns) /
                               static_cast<double>(h[i - 1].duration_ns);
    const double rate = time_growth / key_growth;
    EXPECT_LE(rate, 1.6) << "resize " << i;
    EXPECT_GE(rate, 0.4) << "resize " << i;
  }
}

TEST(RhikResize, MigrationNeverTouchesKvPairs) {
  // §IV-A2: migration re-uses stored signatures; KV-zone pages are never
  // read. All data-zone reads would go through the store, which this rig
  // does not even have — assert the index only reads index-zone pages.
  Rig rig;
  fill_through_resizes(rig, 4);
  const auto& g = rig.nand.geometry();
  Bytes spare(g.spare_size());
  // Every programmed page in this rig is index-zone (no data was ever
  // written), which proves migration derived everything from the index.
  for (Ppa p = 0; p < g.pages_total(); ++p) {
    if (!rig.nand.is_programmed(p)) continue;
    ASSERT_EQ(rig.nand.read_page(p, {}, spare), Status::kOk);
    const auto tag = ftl::SpareTag::decode(spare);
    EXPECT_TRUE(tag.kind == ftl::PageKind::kIndexRecord ||
                tag.kind == ftl::PageKind::kIndexDir);
  }
}

TEST(RhikResize, OldPagesGoStaleAfterMigration) {
  Rig rig;
  fill_through_resizes(rig, 3);
  ASSERT_EQ(rig.index.flush(), Status::kOk);
  // Count live index pages the index claims vs programmed pages; the
  // difference is stale garbage awaiting GC.
  const auto& g = rig.nand.geometry();
  std::uint64_t programmed = 0, live = 0;
  for (Ppa p = 0; p < g.pages_total(); ++p) {
    if (!rig.nand.is_programmed(p)) continue;
    ++programmed;
    if (rig.index.gc_is_live_index_page(p)) ++live;
  }
  EXPECT_GT(programmed, live);  // resize left stale pages behind
  EXPECT_GT(live, 0u);
}

TEST(RhikResize, IncrementalModeAnswersQueriesMidMigration) {
  RhikConfig cfg;
  cfg.incremental_resize = true;
  cfg.incremental_batch = 1;  // migrate slowly so we observe the window
  Rig rig(cfg);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(5);
  // Fill until a migration starts.
  while (!rig.index.migration_active()) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, ref.size()))) ref[sig] = ref.size();
  }
  ASSERT_TRUE(rig.index.migration_active());
  // Mid-migration: every existing mapping must be visible.
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(RhikResize, IncrementalModeCompletesAndPreservesAll) {
  RhikConfig cfg;
  cfg.incremental_resize = true;
  cfg.incremental_batch = 2;
  Rig rig(cfg);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  // Foreground reads no longer migrate; the background pump drains it.
  drain_migration(rig);
  EXPECT_FALSE(rig.index.migration_active());
  EXPECT_GE(rig.index.op_stats().resizes, 1u);
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(RhikResize, IncrementalModeDoesNotStallQueue) {
  RhikConfig cfg;
  cfg.incremental_resize = true;
  Rig rig(cfg);
  fill_through_resizes(rig, 2);
  // No stop-the-world window: stall time stays zero.
  EXPECT_EQ(rig.clock.total_stall(), 0u);
}

TEST(RhikResize, ErasesDuringMigrationLandCorrectly) {
  RhikConfig cfg;
  cfg.incremental_resize = true;
  cfg.incremental_batch = 1;
  Rig rig(cfg);
  std::vector<std::uint64_t> sigs;
  Rng rng(7);
  while (!rig.index.migration_active()) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, 1))) sigs.push_back(sig);
  }
  // Erase half the keys mid-migration.
  std::uint64_t erased = 0;
  for (std::size_t i = 0; i < sigs.size(); i += 2) {
    if (rig.index.erase(sigs[i]) == Status::kOk) ++erased;
  }
  EXPECT_EQ(rig.index.size(), sigs.size() - erased);
  for (std::size_t i = 1; i < sigs.size(); i += 2) {
    EXPECT_TRUE(rig.index.get(sigs[i]).has_value());
  }
  for (std::size_t i = 0; i < sigs.size(); i += 2) {
    EXPECT_FALSE(rig.index.get(sigs[i]).has_value());
  }
}

TEST(RhikResize, GrowthPastDirBitsCapReturnsIndexFull) {
  RhikConfig cfg;
  cfg.max_dir_bits = 1;
  Rig rig(cfg);
  const auto ref = fill_through_resizes(rig, 1);
  drain_migration(rig);
  EXPECT_EQ(rig.index.dir_bits(), 1u);
  // Fill past the refused doubling: new keys keep landing while they fit,
  // and the first insert that genuinely fails surfaces kIndexFull.
  Rng rng(31);
  Status st = Status::kOk;
  for (int i = 0; i < 4000 && st != Status::kIndexFull; ++i) {
    rig.maybe_gc();
    st = rig.index.put(rng.next(), i);
  }
  EXPECT_EQ(st, Status::kIndexFull);
  EXPECT_GE(rig.index.op_stats().index_full, 1u);
  EXPECT_EQ(rig.index.dir_bits(), 1u);
  // The index still serves everything it already holds.
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value()) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(RhikResize, UpdatesOfExistingKeysSucceedAtDirBitsCap) {
  // Regression: the bits cap used to make maybe_resize fail EVERY put
  // once occupancy crossed the threshold — including overwrites, which
  // add no key and always fit. A capped index must keep taking updates.
  RhikConfig cfg;
  cfg.max_dir_bits = 1;
  Rig rig(cfg);
  const auto ref = fill_through_resizes(rig, 1);
  drain_migration(rig);
  // Push occupancy over the next resize threshold so a doubling is wanted
  // (and refused at the cap) on every subsequent put.
  Rng rng(33);
  const std::uint64_t over =
      static_cast<std::uint64_t>(cfg.resize_threshold * rig.index.capacity()) + 2;
  while (rig.index.size() < over) {
    rig.maybe_gc();
    rig.index.put(rng.next(), 1);
  }
  EXPECT_EQ(rig.index.dir_bits(), 1u);
  const std::uint64_t keys = rig.index.size();
  for (const auto& [sig, ppa] : ref) {
    ASSERT_EQ(rig.index.put(sig, ppa + 1000), Status::kOk) << sig;
    EXPECT_EQ(*rig.index.get(sig), ppa + 1000);
  }
  EXPECT_EQ(rig.index.size(), keys);  // overwrites added nothing
  EXPECT_EQ(rig.index.op_stats().index_full, 0u);
}

TEST(RhikResize, ReplayRejectedRepointAfterMigrateForcesFullScan) {
  // Regression for a silent-loss window in journal replay. Tail order:
  //   resize; repoint(new-gen B -> P1) [migration target]; migrate(B_src);
  //   repoint(new-gen B -> P2) [post-migration write-back, non-durable data]
  // Replay applies only a slot's LAST repoint, so P1 is skipped; P2 is
  // rejected by the durability vet. Keeping the image's slot (kInvalidPpa
  // for a fresh split target) would phantom-drop every pre-checkpoint
  // mapping migrated into B, because the migrate record has already
  // retired the source bucket — and may even have closed the window.
  // The index must force the full-scan fallback (kCorruption) instead.
  Rig rig;
  Rng rng(17);
  while (rig.index.size() < 150) rig.index.put(rng.next(), rig.index.size());
  ASSERT_EQ(rig.index.flush(), Status::kOk);
  const Bytes image0 = rig.index.serialize_directory();  // gen 0, bits 0

  // Grow through one full doubling so genuine new-generation record
  // pages exist on flash to stand in for P2.
  while (rig.index.op_stats().resizes == 0) rig.index.put(rng.next(), 1);
  drain_migration(rig);
  ASSERT_EQ(rig.index.flush(), Status::kOk);
  ASSERT_EQ(rig.index.dir_bits(), 1u);
  const Bytes image1 = rig.index.serialize_directory();  // gen 1, bits 1
  const Ppa target = get_u40(image1, 20);  // new-gen bucket 0 record page
  ASSERT_NE(target, flash::kInvalidPpa);

  // Journal slot-key layout: generation in bits 40+, bucket below.
  const auto slot_key = [](std::uint32_t gen, std::uint64_t bucket) {
    return (std::uint64_t{gen} << 40) | bucket;
  };
  const auto never_durable = [](Ppa) { return false; };

  // Replay the tail above against the pre-resize image.
  ASSERT_EQ(rig.index.load_image(image0), Status::kOk);
  ASSERT_EQ(rig.index.apply_journal_resize(1, 1), Status::kOk);
  // Retires bucket 0 — the only source bucket, so the window closes too.
  ASSERT_EQ(rig.index.apply_journal_migrate(slot_key(0, 0)), Status::kOk);
  ASSERT_FALSE(rig.index.maintenance_active());
  EXPECT_EQ(
      rig.index.apply_journal_repoint(slot_key(1, 0), target, never_durable),
      Status::kCorruption);

  // Control: in a tail with no resize record, a rejected write-back keeps
  // the image's slot and replay continues — image + tail reconstructs it.
  ASSERT_EQ(rig.index.load_image(image1), Status::kOk);
  EXPECT_EQ(
      rig.index.apply_journal_repoint(slot_key(1, 0), target, never_durable),
      Status::kOk);
}

TEST(RhikResize, CapacityDoublesDirectoryEachTime) {
  Rig rig;
  const std::uint64_t cap0 = rig.index.capacity();
  fill_through_resizes(rig, 1);
  EXPECT_EQ(rig.index.capacity(), cap0 * 2);
  fill_through_resizes(rig, 2, /*seed=*/55);
  EXPECT_EQ(rig.index.capacity(), cap0 * 4);
}

}  // namespace
}  // namespace rhik::index
