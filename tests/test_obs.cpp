// Unit tests for the observability subsystem (src/obs): metrics
// registry, striped counters under threads, trace ring bounds/sampling,
// snapshot merge semantics, JSON round-trip, and the device integration
// (per-op stage timers, read amplification, periodic dump hook).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "kvssd/device.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/keygen.hpp"

namespace rhik {
namespace {

// -- Registry -------------------------------------------------------------------

TEST(MetricsRegistry, LookupReturnsSameInstance) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.count");
  obs::Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  obs::Timer& t1 = reg.timer("x.lat");
  obs::Timer& t2 = reg.timer("x.lat");
  EXPECT_EQ(&t1, &t2);
  obs::Gauge& g1 = reg.gauge("x.depth", obs::MergeMode::kMax);
  obs::Gauge& g2 = reg.gauge("x.depth");  // mode only applies on creation
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(g2.mode(), obs::MergeMode::kMax);
}

TEST(MetricsRegistry, KindsAreIndependentNamespaces) {
  obs::MetricsRegistry reg;
  reg.counter("dual").inc(3);
  reg.gauge("dual").set(-7);
  reg.timer("dual").record(9);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("dual"), 3u);
  EXPECT_EQ(snap.gauge("dual"), -7);
  ASSERT_NE(snap.timer("dual"), nullptr);
  EXPECT_EQ(snap.timer("dual")->count(), 1u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("n");
  c.inc(5);
  reg.timer("t").record(4);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("n", 999), 0u);  // still registered, now 0
  EXPECT_EQ(snap.timer("t")->count(), 0u);
}

// -- Striped counter / atomic timer under threads -------------------------------

TEST(ObsCounter, ExactUnderConcurrentIncrements) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsTimer, CountAndBoundsUnderConcurrentRecords) {
  obs::Timer timer;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        timer.record(static_cast<std::uint64_t>(t) * 1000 + (i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  const Histogram h = timer.snapshot();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3099u);
}

// -- Trace ring -----------------------------------------------------------------

TEST(TraceRing, BoundedAndOldestFirst) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::OpTrace t;
    t.seq = i;
    ring.push(t);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  const auto recent = ring.recent();
  ASSERT_EQ(recent.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(recent[i].seq, 6 + i);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.recorded(), 0u);
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  obs::TraceRing ring(0);
  obs::OpTrace t;
  ring.push(t);
  ring.push(t);
  EXPECT_EQ(ring.size(), 1u);
}

// -- Snapshot merge semantics ---------------------------------------------------

TEST(MetricsSnapshot, MergeSumsCountersAndHonorsGaugeModes) {
  obs::MetricsSnapshot a, b;
  a.captured_at_ns = 100;
  b.captured_at_ns = 250;
  a.add_counter("ops", 10);
  b.add_counter("ops", 32);
  a.set_gauge("live", 5, obs::MergeMode::kSum);
  b.set_gauge("live", 7, obs::MergeMode::kSum);
  a.set_gauge("clock", 100, obs::MergeMode::kMax);
  b.set_gauge("clock", 90, obs::MergeMode::kMax);
  a.set_gauge("floor", 4, obs::MergeMode::kMin);
  b.set_gauge("floor", 2, obs::MergeMode::kMin);
  Histogram h1, h2;
  h1.record(1);
  h2.record(100);
  a.add_timer("lat", h1);
  b.add_timer("lat", h2);

  a.merge_from(b);
  EXPECT_EQ(a.captured_at_ns, 250u);  // array time = slowest shard
  EXPECT_EQ(a.counter("ops"), 42u);
  EXPECT_EQ(a.gauge("live"), 12);
  EXPECT_EQ(a.gauge("clock"), 100);
  EXPECT_EQ(a.gauge("floor"), 2);
  ASSERT_NE(a.timer("lat"), nullptr);
  EXPECT_EQ(a.timer("lat")->count(), 2u);
  EXPECT_EQ(a.timer("lat")->max(), 100u);
}

TEST(MetricsSnapshot, LookupFallbacks) {
  obs::MetricsSnapshot snap;
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.counter("absent", 17), 17u);
  EXPECT_EQ(snap.gauge("absent", -3), -3);
  EXPECT_EQ(snap.timer("absent"), nullptr);
}

// -- JSON round-trip ------------------------------------------------------------

TEST(MetricsSnapshot, JsonRoundTrip) {
  obs::MetricsSnapshot snap;
  snap.captured_at_ns = 123456789;
  snap.add_counter("device.puts", 42);
  snap.add_counter("nand.page_reads", 7);
  snap.set_gauge("clock.now_ns", 123456789, obs::MergeMode::kMax);
  snap.set_gauge("device.live_bytes", -1, obs::MergeMode::kSum);
  Histogram h;
  for (std::uint64_t v = 0; v < 200; ++v) h.record(v * 37);
  snap.add_timer("op.get.total_ns", h);

  const std::string json = snap.to_json();
  auto parsed = obs::MetricsSnapshot::from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->captured_at_ns, snap.captured_at_ns);
  EXPECT_EQ(parsed->counters, snap.counters);
  ASSERT_EQ(parsed->gauges.size(), snap.gauges.size());
  EXPECT_EQ(parsed->gauge("clock.now_ns"), 123456789);
  EXPECT_EQ(parsed->gauge("device.live_bytes"), -1);
  EXPECT_EQ(parsed->gauges.at("clock.now_ns").mode, obs::MergeMode::kMax);
  ASSERT_NE(parsed->timer("op.get.total_ns"), nullptr);
  EXPECT_EQ(parsed->timer("op.get.total_ns")->count(), h.count());
  EXPECT_EQ(parsed->timer("op.get.total_ns")->max(), h.max());
  // Percentiles are recomputed from buckets, so a second round-trip is
  // byte-stable.
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(MetricsSnapshot, FromJsonRejectsGarbage) {
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("").has_value());
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("not json").has_value());
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("{\"counters\":").has_value());
}

TEST(MetricsSnapshot, JsonEscapesNames) {
  obs::MetricsSnapshot snap;
  snap.add_counter("weird\"name\\with\tescapes", 1);
  const std::string json = snap.to_json();
  auto parsed = obs::MetricsSnapshot::from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->counter("weird\"name\\with\tescapes"), 1u);
}

// -- Device integration ---------------------------------------------------------

kvssd::DeviceConfig small_device_config() {
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(64ull << 20);
  cfg.rhik.anticipated_keys = 2000;
  return cfg;
}

TEST(DeviceObs, SnapshotCarriesStageTimersAndReadAmp) {
  kvssd::DeviceConfig cfg = small_device_config();
  cfg.obs.trace_sample_every = 1;
  kvssd::KvssdDevice dev(cfg);

  Bytes value(256);
  for (std::uint64_t id = 0; id < 500; ++id) {
    workload::fill_value(id, value);
    ASSERT_TRUE(ok(dev.put(workload::key_for_id(id, 16), value)));
  }
  // Flush the RAM write buffer so every get below pays a data-page read.
  ASSERT_TRUE(ok(dev.flush()));
  Bytes out;
  for (std::uint64_t id = 0; id < 500; ++id) {
    ASSERT_TRUE(ok(dev.get(workload::key_for_id(id, 16), &out)));
  }

  const obs::MetricsSnapshot snap = dev.metrics_snapshot();
  // Per-stage timers exist and counted every op.
  for (const char* name :
       {"op.put.total_ns", "op.put.index_ns", "op.put.flash_ns", "op.put.gc_ns",
        "op.get.total_ns", "op.get.index_ns", "op.get.flash_ns",
        "op.get.flash_reads", "op.get.index_flash_reads"}) {
    ASSERT_NE(snap.timer(name), nullptr) << name;
  }
  EXPECT_EQ(snap.timer("op.put.total_ns")->count(), 500u);
  EXPECT_EQ(snap.timer("op.get.total_ns")->count(), 500u);
  // Every cached get costs at least the data-page read.
  EXPECT_GE(snap.timer("op.get.flash_reads")->min(), 1u);
  // Component stats publish through the same snapshot.
  EXPECT_EQ(snap.counter("device.puts"), 500u);
  EXPECT_EQ(snap.counter("device.gets"), 500u);
  EXPECT_GT(snap.counter("nand.page_reads"), 0u);
  EXPECT_EQ(snap.gauge("device.key_count"), 500);
  EXPECT_EQ(snap.gauge("clock.now_ns"),
            static_cast<std::int64_t>(dev.clock().now()));
  // Stage sim time is attributed: a get spends its time in flash reads.
  EXPECT_GT(snap.timer("op.get.flash_ns")->max(), 0u);
}

TEST(DeviceObs, TraceRingSamplesEveryNth) {
  kvssd::DeviceConfig cfg = small_device_config();
  cfg.obs.trace_sample_every = 10;
  cfg.obs.trace_ring_capacity = 8;
  kvssd::KvssdDevice dev(cfg);

  Bytes value(64);
  for (std::uint64_t id = 0; id < 100; ++id) {
    workload::fill_value(id, value);
    ASSERT_TRUE(ok(dev.put(workload::key_for_id(id, 16), value)));
  }
  // 100 ops, 1-in-10 sampling: 10 recorded, last 8 retained.
  EXPECT_EQ(dev.trace_ring().recorded(), 10u);
  EXPECT_EQ(dev.trace_ring().size(), 8u);
  for (const obs::OpTrace& t : dev.trace_ring().recent()) {
    EXPECT_EQ(t.seq % 10, 0u);
    EXPECT_EQ(t.kind, obs::OpKind::kPut);
    EXPECT_GT(t.total_ns, 0u);
  }
}

TEST(DeviceObs, MetricsOffDisablesObsLayer) {
  kvssd::DeviceConfig cfg = small_device_config();
  cfg.obs.metrics = false;
  kvssd::KvssdDevice dev(cfg);
  Bytes value(64);
  for (std::uint64_t id = 0; id < 50; ++id) {
    workload::fill_value(id, value);
    ASSERT_TRUE(ok(dev.put(workload::key_for_id(id, 16), value)));
  }
  EXPECT_EQ(dev.trace_ring().recorded(), 0u);
  const obs::MetricsSnapshot snap = dev.metrics_snapshot();
  EXPECT_EQ(snap.timer("op.put.total_ns"), nullptr);
  // Component stats still publish — only the per-op layer is gated.
  EXPECT_EQ(snap.counter("device.puts"), 50u);
}

TEST(DeviceObs, PeriodicDumpFiresOnSimClock) {
  kvssd::DeviceConfig cfg = small_device_config();
  cfg.obs.dump_period_ns = 1 * kMillisecond;
  kvssd::KvssdDevice dev(cfg);

  std::vector<SimTime> fired;
  dev.set_metrics_dump([&](SimTime now, const obs::MetricsSnapshot& snap) {
    fired.push_back(now);
    EXPECT_EQ(now, snap.captured_at_ns);
  });

  Bytes value(256);
  std::uint64_t id = 0;
  while (dev.clock().now() < 5 * kMillisecond) {
    workload::fill_value(id, value);
    ASSERT_TRUE(ok(dev.put(workload::key_for_id(id++, 16), value)));
  }
  // ~5 ms of simulated time with a 1 ms period: several dumps. The
  // schedule advances on period boundaries (not from the actual fire
  // time), so a late fire followed by an on-time one can land slightly
  // closer together than a full period — but never closer than half.
  EXPECT_GE(fired.size(), 3u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GT(fired[i], fired[i - 1]);
    EXPECT_GE(fired[i] - fired[i - 1], cfg.obs.dump_period_ns / 2);
  }
}

TEST(DeviceObs, AsyncDrainRecordsQueueWait) {
  kvssd::DeviceConfig cfg = small_device_config();
  cfg.obs.trace_sample_every = 1;
  kvssd::KvssdDevice dev(cfg);

  Bytes value(128);
  for (std::uint64_t id = 0; id < 64; ++id) {
    workload::fill_value(id, value);
    dev.submit_put(workload::key_for_id(id, 16), value);
  }
  dev.drain();

  const obs::MetricsSnapshot snap = dev.metrics_snapshot();
  ASSERT_NE(snap.timer("op.put.queue_ns"), nullptr);
  // All 64 ops were enqueued at sim time 0 and executed serially during
  // the drain, so later ops waited strictly longer than the first.
  EXPECT_EQ(snap.timer("op.put.queue_ns")->count(), 64u);
  EXPECT_GT(snap.timer("op.put.queue_ns")->max(), 0u);
}

}  // namespace
}  // namespace rhik
