// Unit tests for the byte-budgeted LRU cache (the SSD DRAM model).
#include <gtest/gtest.h>

#include <vector>

#include "cache/lru_cache.hpp"

namespace rhik::cache {
namespace {

TEST(LruCache, HitAndMissCounting) {
  LruCache<int, int> c(4096, 1024);  // 4 entries
  EXPECT_EQ(c.get(1), nullptr);
  c.insert(1, 100);
  ASSERT_NE(c.get(1), nullptr);
  EXPECT_EQ(*c.get(1), 100);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_DOUBLE_EQ(c.stats().miss_ratio(), 1.0 / 3.0);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> c(3 * 100, 100);  // 3 entries
  c.insert(1, 1);
  c.insert(2, 2);
  c.insert(3, 3);
  ASSERT_NE(c.get(1), nullptr);  // refresh 1; LRU is now 2
  c.insert(4, 4);
  EXPECT_EQ(c.peek(2), nullptr);
  EXPECT_NE(c.peek(1), nullptr);
  EXPECT_NE(c.peek(3), nullptr);
  EXPECT_NE(c.peek(4), nullptr);
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCache, DirtyWritebackOnEviction) {
  LruCache<int, int> c(2 * 10, 10);  // 2 entries
  std::vector<std::pair<int, int>> written;
  c.set_writeback([&](const int& k, int& v) { written.emplace_back(k, v); });
  c.insert(1, 11, /*dirty=*/true);
  c.insert(2, 22, /*dirty=*/false);
  c.insert(3, 33);  // evicts 1 (dirty) -> writeback
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], std::make_pair(1, 11));
  c.insert(4, 44);  // evicts 2 (clean) -> no writeback
  EXPECT_EQ(written.size(), 1u);
  EXPECT_EQ(c.stats().dirty_writebacks, 1u);
}

TEST(LruCache, MarkDirtyThenFlushAll) {
  LruCache<int, int> c(1024, 1);
  std::vector<int> written;
  c.set_writeback([&](const int& k, int&) { written.push_back(k); });
  c.insert(1, 1);
  c.insert(2, 2);
  c.mark_dirty(1);
  c.flush_all();
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], 1);
  // Entries remain cached and are now clean.
  EXPECT_NE(c.peek(1), nullptr);
  c.flush_all();
  EXPECT_EQ(written.size(), 1u);
}

TEST(LruCache, EraseSkipsWriteback) {
  LruCache<int, int> c(1024, 1);
  int writebacks = 0;
  c.set_writeback([&](const int&, int&) { ++writebacks; });
  c.insert(1, 1, /*dirty=*/true);
  c.erase(1);
  EXPECT_EQ(writebacks, 0);
  EXPECT_EQ(c.peek(1), nullptr);
  c.erase(42);  // erasing a missing key is a no-op
}

TEST(LruCache, InsertReplacesAndMergesDirty) {
  LruCache<int, int> c(1024, 1);
  int writebacks = 0;
  c.set_writeback([&](const int&, int&) { ++writebacks; });
  c.insert(1, 10, /*dirty=*/true);
  c.insert(1, 20, /*dirty=*/false);  // replacement keeps the dirty bit
  EXPECT_EQ(*c.peek(1), 20);
  c.flush_all();
  EXPECT_EQ(writebacks, 1);
}

TEST(LruCache, BudgetOfZeroStillHoldsOne) {
  LruCache<int, int> c(0, 4096);
  c.insert(1, 1);
  EXPECT_NE(c.peek(1), nullptr);
  c.insert(2, 2);
  EXPECT_EQ(c.peek(1), nullptr);
  EXPECT_EQ(c.size(), 1u);
}

TEST(LruCache, ShrinkCapacityEvicts) {
  LruCache<int, int> c(10 * 1, 1);
  std::vector<int> written;
  c.set_writeback([&](const int& k, int&) { written.push_back(k); });
  for (int i = 0; i < 10; ++i) c.insert(i, i, /*dirty=*/true);
  c.set_capacity_entries(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(written.size(), 8u);  // evicted dirty entries written back
  EXPECT_NE(c.peek(9), nullptr);
  EXPECT_NE(c.peek(8), nullptr);
}

TEST(LruCache, ClearWritesBackDirty) {
  LruCache<int, int> c(1024, 1);
  int writebacks = 0;
  c.set_writeback([&](const int&, int&) { ++writebacks; });
  c.insert(1, 1, /*dirty=*/true);
  c.insert(2, 2);
  c.clear();
  EXPECT_EQ(writebacks, 1);
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCache, PeekDoesNotPerturbLruOrStats) {
  LruCache<int, int> c(2 * 1, 1);
  c.insert(1, 1);
  c.insert(2, 2);
  const auto misses_before = c.stats().misses;
  c.peek(1);  // does not refresh
  c.insert(3, 3);
  EXPECT_EQ(c.peek(1), nullptr);  // 1 was LRU despite the peek
  EXPECT_EQ(c.stats().misses, misses_before);
}

TEST(LruCache, ManyEntriesStressRemainsConsistent) {
  LruCache<std::uint64_t, std::uint64_t> c(128 * 8, 8);  // 128 entries
  for (std::uint64_t i = 0; i < 10000; ++i) {
    c.insert(i % 300, i);
    if (i % 3 == 0) c.get(i % 150);
  }
  EXPECT_LE(c.size(), 128u);
  EXPECT_GT(c.stats().hits, 0u);
  EXPECT_GT(c.stats().evictions, 0u);
}

}  // namespace
}  // namespace rhik::cache
