// End-to-end system tests: long mixed workloads across resizes, GC and
// both index schemes; restart-from-checkpoint; RHIK/baseline equivalence.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "hash/murmur.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/device.hpp"
#include "workload/keygen.hpp"
#include "workload/replay.hpp"

namespace rhik {
namespace {

using kvssd::DeviceConfig;
using kvssd::IndexKind;
using kvssd::KvssdDevice;

DeviceConfig device_config(IndexKind kind, std::uint32_t blocks = 256) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(blocks);
  cfg.dram_cache_bytes = 32 * 4096;
  cfg.index_kind = kind;
  if (kind == IndexKind::kMlHash) {
    cfg.mlhash = index::MlHashConfig::for_keys(40000, cfg.geometry.page_size);
  }
  return cfg;
}

TEST(Integration, MixedWorkloadSurvivesResizesAndGc) {
  // Small device (4 MiB) so the churn genuinely cycles the GC.
  KvssdDevice dev(device_config(IndexKind::kRhik, /*blocks=*/64));
  std::unordered_map<std::uint64_t, std::uint32_t> live;  // id -> value size
  Rng rng(2024);

  for (int step = 0; step < 25000; ++step) {
    const std::uint64_t id = rng.next_below(3000);
    const Bytes k = workload::key_for_id(id, 16);
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 6) {
      const auto vsize = static_cast<std::uint32_t>(rng.next_range(8, 600));
      Bytes v(vsize);
      workload::fill_value(id, v);
      ASSERT_EQ(dev.put(k, v), Status::kOk) << "step " << step;
      live[id] = vsize;
    } else if (action < 9) {
      Bytes v;
      const Status s = dev.get(k, &v);
      if (live.count(id)) {
        ASSERT_EQ(s, Status::kOk) << "step " << step << " id " << id;
        EXPECT_EQ(v.size(), live[id]);
        EXPECT_TRUE(workload::check_value(id, v));
      } else {
        EXPECT_EQ(s, Status::kNotFound) << "step " << step;
      }
    } else {
      const Status s = dev.del(k);
      EXPECT_EQ(s, live.erase(id) ? Status::kOk : Status::kNotFound);
    }
  }
  EXPECT_EQ(dev.key_count(), live.size());
  EXPECT_GT(dev.index().op_stats().resizes, 0u);
  EXPECT_GT(dev.gc().stats().blocks_reclaimed, 0u);
  EXPECT_EQ(dev.index().op_stats().writeback_failures, 0u);

  // Full verification pass.
  for (const auto& [id, vsize] : live) {
    Bytes v;
    ASSERT_EQ(dev.get(workload::key_for_id(id, 16), &v), Status::kOk);
    EXPECT_EQ(v.size(), vsize);
    EXPECT_TRUE(workload::check_value(id, v));
  }
}

TEST(Integration, RhikAndMlHashAgreeOnWorkload) {
  // Same operation stream to both backends: identical visible semantics
  // (as long as the fixed-capacity baseline accepts every key).
  KvssdDevice rhik_dev(device_config(IndexKind::kRhik));
  KvssdDevice ml_dev(device_config(IndexKind::kMlHash));
  Rng rng(77);
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t id = rng.next_below(1500);
    const Bytes k = workload::key_for_id(id, 16);
    const int action = static_cast<int>(rng.next_below(4));
    if (action < 2) {
      Bytes v(rng.next_range(8, 200));
      workload::fill_value(id, v);
      const Status a = rhik_dev.put(k, v);
      const Status b = ml_dev.put(k, v);
      ASSERT_EQ(a, b) << step;
    } else if (action == 2) {
      Bytes va, vb;
      const Status a = rhik_dev.get(k, &va);
      const Status b = ml_dev.get(k, &vb);
      ASSERT_EQ(a, b) << step;
      if (ok(a)) {
        EXPECT_EQ(va, vb);
      }
    } else {
      ASSERT_EQ(rhik_dev.del(k), ml_dev.del(k)) << step;
    }
  }
  EXPECT_EQ(rhik_dev.key_count(), ml_dev.key_count());
}

TEST(Integration, RestartFromDirectoryCheckpoint) {
  // Firmware-restart scenario: flush everything, persist the directory
  // image, rebuild the in-DRAM index over the same flash, verify reads.
  SimClock clock;
  flash::NandDevice nand(flash::Geometry::tiny(256),
                         flash::NandLatency::kvemu_defaults(), &clock);
  ftl::PageAllocator alloc(&nand, 2);
  ftl::FlashKvStore store(&nand, &alloc);

  std::unordered_map<std::uint64_t, std::string> ref;
  Bytes dir_image;
  index::RhikConfig cfg;
  {
    index::RhikIndex index(&nand, &alloc, cfg, 1 << 20);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t id = rng.next_below(100000);
      const Bytes k = workload::key_for_id(id, 16);
      const std::string v = "value-" + std::to_string(id);
      const std::uint64_t sig = hash::murmur2_64(k);
      auto ppa = store.write_pair(sig, k, as_bytes(v));
      ASSERT_TRUE(ppa);
      if (auto old = index.get(sig)) {
        store.note_stale(*old, ftl::FlashKvStore::pair_bytes(k.size(), v.size()));
      }
      ASSERT_EQ(index.put(sig, *ppa), Status::kOk);
      ref[id] = v;
    }
    ASSERT_EQ(store.flush(), Status::kOk);
    ASSERT_EQ(index.flush(), Status::kOk);
    dir_image = index.serialize_directory();
  }

  // "Restart": new index object over the same NAND + allocator state.
  index::RhikIndex revived(&nand, &alloc, cfg, 1 << 20);
  ASSERT_EQ(revived.load_directory(dir_image), Status::kOk);
  EXPECT_EQ(revived.size(), ref.size());
  for (const auto& [id, v] : ref) {
    const Bytes k = workload::key_for_id(id, 16);
    const std::uint64_t sig = hash::murmur2_64(k);
    const auto ppa = revived.get(sig);
    ASSERT_TRUE(ppa.has_value()) << id;
    Bytes got_key, got_value;
    ASSERT_EQ(store.read_pair(*ppa, sig, &got_key, &got_value), Status::kOk);
    EXPECT_EQ(got_key, k);
    EXPECT_EQ(rhik::to_string(got_value), v);
  }
}

TEST(Integration, IncrementalResizeDeviceEndToEnd) {
  DeviceConfig cfg = device_config(IndexKind::kRhik);
  cfg.rhik.incremental_resize = true;
  cfg.rhik.incremental_batch = 2;
  KvssdDevice dev(cfg);
  std::unordered_map<std::uint64_t, std::uint32_t> live;
  Rng rng(31);
  for (int step = 0; step < 8000; ++step) {
    const std::uint64_t id = rng.next_below(2500);
    Bytes v(rng.next_range(8, 300));
    workload::fill_value(id, v);
    ASSERT_EQ(dev.put(workload::key_for_id(id, 16), v), Status::kOk) << step;
    live[id] = static_cast<std::uint32_t>(v.size());
  }
  EXPECT_GE(dev.index().op_stats().resizes, 1u);
  // No stop-the-world stall was charged in incremental mode.
  EXPECT_EQ(dev.clock().total_stall(), 0u);
  for (const auto& [id, vsize] : live) {
    Bytes v;
    ASSERT_EQ(dev.get(workload::key_for_id(id, 16), &v), Status::kOk);
    EXPECT_EQ(v.size(), vsize);
  }
}

TEST(Integration, StopTheWorldStallVisibleAtDeviceLevel) {
  DeviceConfig cfg = device_config(IndexKind::kRhik);
  cfg.rhik.incremental_resize = false;
  KvssdDevice dev(cfg);
  Rng rng(41);
  for (int i = 0; i < 6000; ++i) {
    Bytes v(32);
    workload::fill_value(i, v);
    ASSERT_EQ(dev.put(workload::key_for_id(i, 16), v), Status::kOk);
  }
  EXPECT_GT(dev.index().op_stats().resizes, 0u);
  EXPECT_GT(dev.clock().total_stall(), 0u);  // Fig. 7's measured quantity
}

TEST(Integration, ReplayHarnessOnBothBackends) {
  workload::Trace trace;
  Rng rng(55);
  for (std::uint64_t i = 0; i < 1500; ++i) {
    trace.push_back({workload::OpType::kPut, i, 128});
  }
  for (int i = 0; i < 3000; ++i) {
    trace.push_back({workload::OpType::kGet, rng.next_below(1500), 0});
  }

  KvssdDevice rhik_dev(device_config(IndexKind::kRhik));
  KvssdDevice ml_dev(device_config(IndexKind::kMlHash));
  workload::ReplayOptions opts;
  opts.verify_values = true;
  const auto r1 = workload::replay(rhik_dev, trace, opts);
  const auto r2 = workload::replay(ml_dev, trace, opts);
  EXPECT_EQ(r1.failed_ops, 0u);
  EXPECT_EQ(r2.failed_ops, 0u);
  EXPECT_EQ(r1.not_found, 0u);
  EXPECT_EQ(r2.not_found, 0u);
  // RHIK's bounded metadata cost shows up as fewer index flash reads.
  EXPECT_LE(rhik_dev.index().op_stats().reads_per_lookup.max(), 1u);
}

}  // namespace
}  // namespace rhik
