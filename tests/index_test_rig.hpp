// Shared test fixture: an index over a tiny NAND device with a working
// garbage collector. Index-only workloads continuously retire record
// pages (every dirty write-back programs a new page and stales the old
// one), so long-running tests must reclaim — exactly as the device does.
#pragma once

#include <gtest/gtest.h>

#include "common/sim_clock.hpp"
#include "flash/nand.hpp"
#include "ftl/gc.hpp"
#include "ftl/kv_store.hpp"
#include "ftl/page_allocator.hpp"

namespace rhik::testutil {

template <typename IndexT, typename ConfigT>
struct IndexRig {
  explicit IndexRig(ConfigT cfg = {}, std::uint64_t cache_bytes = 1 << 20,
                    std::uint32_t blocks = 128)
      : nand(flash::Geometry::tiny(blocks), flash::NandLatency::kvemu_defaults(),
             &clock),
        alloc(&nand, 2),
        store(&nand, &alloc),
        index(&nand, &alloc, cfg, cache_bytes),
        gc(&nand, &alloc, &store, &index) {}

  /// Foreground GC, as the device layer would run it before writes.
  void maybe_gc() {
    if (alloc.needs_gc()) gc.collect(alloc.gc_reserve() + 2);
  }

  /// No dirty table may ever be dropped: a healthy rig keeps this at 0.
  void expect_no_lost_writebacks() const {
    EXPECT_EQ(index.op_stats().writeback_failures, 0u);
  }

  SimClock clock;
  flash::NandDevice nand;
  ftl::PageAllocator alloc;
  ftl::FlashKvStore store;
  IndexT index;
  ftl::GarbageCollector gc;
};

}  // namespace rhik::testutil
