// Async submission-path semantics: value-carrying get completions,
// exactly-once callbacks, sync/async status parity, and the index-aware
// (bucket-grouped) batch drain returning results identical to the
// strictly serial drain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "index/rhik/rhik_index.hpp"
#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

namespace rhik::kvssd {
namespace {

DeviceConfig small_config(bool grouped = true) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(256);  // 16 MiB
  cfg.dram_cache_bytes = 64 * 1024;
  cfg.batch_drain_grouping = grouped;
  return cfg;
}

ByteSpan key(const std::string& s) { return as_bytes(s); }
Bytes owned(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(AsyncDrain, GetCallbackCarriesValue) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("alpha"), key("value-one")), Status::kOk);
  ASSERT_EQ(dev.put(key("beta"), key("value-two")), Status::kOk);

  int fired = 0;
  dev.submit_get(owned("alpha"), [&](Status s, Bytes&& v) {
    EXPECT_EQ(s, Status::kOk);
    EXPECT_EQ(rhik::to_string(v), "value-one");
    ++fired;
  });
  dev.submit_get(owned("beta"), [&](Status s, Bytes&& v) {
    EXPECT_EQ(s, Status::kOk);
    EXPECT_EQ(rhik::to_string(v), "value-two");
    ++fired;
  });
  dev.submit_get(owned("missing"), [&](Status s, Bytes&& v) {
    EXPECT_EQ(s, Status::kNotFound);
    EXPECT_TRUE(v.empty());
    ++fired;
  });
  EXPECT_EQ(dev.drain(), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(AsyncDrain, StatusOnlyGetCallbackStillWorks) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("k"), key("v")), Status::kOk);
  int fired = 0;
  dev.submit_get(owned("k"), [&](Status s) {
    EXPECT_EQ(s, Status::kOk);
    ++fired;
  });
  EXPECT_EQ(dev.drain(), 1u);
  EXPECT_EQ(fired, 1);
}

/// Deterministic randomized mixed workload: op kind + key id + value.
struct MixedOp {
  enum class Kind { kPut, kGet, kDel } kind;
  std::uint64_t id;
};

std::vector<MixedOp> make_workload(std::uint64_t seed, std::size_t n,
                                   std::uint64_t keyspace) {
  Rng rng(seed);
  std::vector<MixedOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t roll = rng.next_below(10);
    MixedOp op;
    op.kind = roll < 5   ? MixedOp::Kind::kPut
              : roll < 8 ? MixedOp::Kind::kGet
                         : MixedOp::Kind::kDel;
    op.id = rng.next_below(keyspace);
    ops.push_back(op);
  }
  return ops;
}

Bytes value_for(std::uint64_t id) {
  Bytes v(48);
  workload::fill_value(id, v);
  return v;
}

/// Runs the workload synchronously; returns per-op (status, value).
std::vector<std::pair<Status, Bytes>> run_sync(KvssdDevice& dev,
                                               const std::vector<MixedOp>& ops) {
  std::vector<std::pair<Status, Bytes>> out;
  out.reserve(ops.size());
  for (const MixedOp& op : ops) {
    const Bytes k = workload::key_for_id(op.id, 16);
    switch (op.kind) {
      case MixedOp::Kind::kPut:
        out.emplace_back(dev.put(k, value_for(op.id)), Bytes{});
        break;
      case MixedOp::Kind::kGet: {
        Bytes v;
        const Status s = dev.get(k, &v);
        out.emplace_back(s, std::move(v));
        break;
      }
      case MixedOp::Kind::kDel:
        out.emplace_back(dev.del(k), Bytes{});
        break;
    }
  }
  return out;
}

/// Runs the workload through the async queue (drained every
/// `batch` submissions); returns per-op (status, value) plus a per-op
/// completion count so exactly-once delivery is checkable.
std::vector<std::pair<Status, Bytes>> run_async(
    KvssdDevice& dev, const std::vector<MixedOp>& ops, std::size_t batch,
    std::vector<int>* fire_counts) {
  std::vector<std::pair<Status, Bytes>> out(ops.size(),
                                            {Status::kBusy, Bytes{}});
  fire_counts->assign(ops.size(), 0);
  std::size_t queued = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const MixedOp& op = ops[i];
    const Bytes k = workload::key_for_id(op.id, 16);
    switch (op.kind) {
      case MixedOp::Kind::kPut:
        dev.submit_put(k, value_for(op.id), [&, i](Status s) {
          out[i].first = s;
          (*fire_counts)[i]++;
        });
        break;
      case MixedOp::Kind::kGet:
        dev.submit_get(k, [&, i](Status s, Bytes&& v) {
          out[i] = {s, std::move(v)};
          (*fire_counts)[i]++;
        });
        break;
      case MixedOp::Kind::kDel:
        dev.submit_del(k, [&, i](Status s) {
          out[i].first = s;
          (*fire_counts)[i]++;
        });
        break;
    }
    if (++queued % batch == 0) dev.drain();
  }
  dev.drain();
  return out;
}

TEST(AsyncDrain, CallbacksFireOnceAndMatchSyncPath) {
  const auto ops = make_workload(/*seed=*/7, /*n=*/600, /*keyspace=*/80);

  KvssdDevice sync_dev(small_config());
  KvssdDevice async_dev(small_config());
  const auto expect = run_sync(sync_dev, ops);
  std::vector<int> fires;
  const auto got = run_async(async_dev, ops, /*batch=*/48, &fires);

  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(fires[i], 1) << "op " << i;
    EXPECT_EQ(got[i].first, expect[i].first) << "op " << i;
    EXPECT_EQ(got[i].second, expect[i].second) << "op " << i;
  }
  EXPECT_EQ(async_dev.key_count(), sync_dev.key_count());
}

TEST(AsyncDrain, GroupedDrainMatchesSerialDrain) {
  const auto ops = make_workload(/*seed=*/23, /*n=*/800, /*keyspace=*/120);

  KvssdDevice serial_dev(small_config(/*grouped=*/false));
  KvssdDevice grouped_dev(small_config(/*grouped=*/true));
  std::vector<int> serial_fires, grouped_fires;
  const auto serial = run_async(serial_dev, ops, /*batch=*/64, &serial_fires);
  const auto grouped = run_async(grouped_dev, ops, /*batch=*/64, &grouped_fires);

  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(grouped_fires[i], 1) << "op " << i;
    EXPECT_EQ(grouped[i].first, serial[i].first) << "op " << i;
    EXPECT_EQ(grouped[i].second, serial[i].second) << "op " << i;
  }
  EXPECT_EQ(grouped_dev.key_count(), serial_dev.key_count());
}

TEST(AsyncDrain, GroupingReducesIndexFlashReadsUnderCachePressure) {
  // Keyspace large enough that the RHIK directory holds many more record
  // pages than the cache (2 pages) can keep resident; random get order
  // then misses on nearly every op unless the drain groups by bucket.
  DeviceConfig cfg = small_config(/*grouped=*/false);
  cfg.dram_cache_bytes = 2 * cfg.geometry.page_size;
  constexpr std::uint64_t kKeys = 4000;
  constexpr std::size_t kGets = 2048;

  const auto run = [&](bool grouped) -> std::uint64_t {
    cfg.batch_drain_grouping = grouped;
    KvssdDevice dev(cfg);
    Bytes v(32);
    for (std::uint64_t id = 0; id < kKeys; ++id) {
      workload::fill_value(id, v);
      EXPECT_EQ(dev.put(workload::key_for_id(id, 16), v), Status::kOk);
    }
    dev.index().reset_op_stats();
    Rng rng(99);  // same draw sequence for both devices
    for (std::size_t i = 0; i < kGets; ++i) {
      dev.submit_get(workload::key_for_id(rng.next_below(kKeys), 16),
                     [](Status s) { EXPECT_EQ(s, Status::kOk); });
    }
    EXPECT_EQ(dev.drain(), kGets);
    return dev.index().op_stats().flash_reads;
  };

  const std::uint64_t serial_reads = run(false);
  const std::uint64_t grouped_reads = run(true);
  // The whole batch is queued before one drain, so grouping loads each
  // bucket's record page about once while serial order thrashes.
  EXPECT_LT(grouped_reads * 2, serial_reads);
}

TEST(AsyncDrain, CallbackResubmissionDrainsInSameCall) {
  KvssdDevice dev(small_config());
  int second_fired = 0;
  dev.submit_put(owned("chain"), owned("v1"), [&](Status s) {
    EXPECT_EQ(s, Status::kOk);
    dev.submit_get(owned("chain"), [&](Status s2, Bytes&& v) {
      EXPECT_EQ(s2, Status::kOk);
      EXPECT_EQ(rhik::to_string(v), "v1");
      ++second_fired;
    });
  });
  EXPECT_EQ(dev.drain(), 2u);
  EXPECT_EQ(second_fired, 1);
}

}  // namespace
}  // namespace rhik::kvssd
