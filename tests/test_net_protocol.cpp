// Property/fuzz tests for the serving layer's wire codec
// (net/protocol.hpp): random frames must round-trip exactly through the
// incremental decoders under arbitrary chunking, and truncated,
// corrupted, or oversized streams must be rejected cleanly (no crash,
// no garbage frame) — run under ASan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "net/protocol.hpp"
#include "test_seed.hpp"

namespace rhik::net {
namespace {

RequestFrame random_request(std::mt19937_64& rng, const WireLimits& limits) {
  RequestFrame f;
  f.opcode = static_cast<Opcode>(1 + rng() % 5);
  f.tenant_id = static_cast<std::uint32_t>(rng());
  f.request_id = rng();
  f.limit = static_cast<std::uint32_t>(rng() % 1000);
  f.key.resize(rng() % (limits.max_key_len + 1));
  for (auto& b : f.key) b = static_cast<std::uint8_t>(rng());
  // Bias small: megabyte values make the fuzz loop IO-bound for no
  // extra coverage.
  const std::size_t vmax = rng() % 8 == 0 ? limits.max_value_len : 512;
  f.value.resize(rng() % (vmax + 1));
  for (auto& b : f.value) b = static_cast<std::uint8_t>(rng());
  return f;
}

ResponseFrame random_response(std::mt19937_64& rng) {
  ResponseFrame f;
  f.opcode = static_cast<Opcode>(1 + rng() % 5);
  f.status = static_cast<api::KvsResult>(
      rng() % (static_cast<unsigned>(api::KvsResult::KVS_ERR_QUEUE_FULL) + 1));
  f.request_id = rng();
  f.extra = static_cast<std::uint32_t>(rng());
  f.value.resize(rng() % 600);
  for (auto& b : f.value) b = static_cast<std::uint8_t>(rng());
  return f;
}

/// Feeds `stream` to the decoder in random-sized chunks.
template <typename Decoder, typename Frame>
std::vector<Frame> chunked_decode(Decoder& dec, const Bytes& stream,
                                  std::mt19937_64& rng) {
  std::vector<Frame> out;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng() % 4096, stream.size() - off);
    dec.feed(ByteSpan(stream.data() + off, n));
    off += n;
    Frame f;
    for (;;) {
      const DecodeStatus ds = dec.next(&f);
      if (ds == DecodeStatus::kFrame) {
        out.push_back(std::move(f));
        continue;
      }
      EXPECT_EQ(ds, DecodeStatus::kNeedMore);
      break;
    }
  }
  return out;
}

TEST(NetProtocol, RequestRoundTripRandomChunks) {
  const std::uint64_t seed = test::harness_seed(0xC0DEC0DEull);
  std::mt19937_64 rng(seed);
  const WireLimits limits;
  for (int round = 0; round < 10; ++round) {
    std::vector<RequestFrame> sent;
    Bytes stream;
    for (int i = 0; i < 50; ++i) {
      sent.push_back(random_request(rng, limits));
      encode_request(sent.back(), &stream);
    }
    RequestDecoder dec(limits);
    const auto got = chunked_decode<RequestDecoder, RequestFrame>(
        dec, stream, rng);
    ASSERT_EQ(got.size(), sent.size()) << "seed " << seed;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].opcode, sent[i].opcode) << "seed " << seed;
      EXPECT_EQ(got[i].tenant_id, sent[i].tenant_id) << "seed " << seed;
      EXPECT_EQ(got[i].request_id, sent[i].request_id) << "seed " << seed;
      EXPECT_EQ(got[i].limit, sent[i].limit) << "seed " << seed;
      EXPECT_EQ(got[i].key, sent[i].key) << "seed " << seed;
      EXPECT_EQ(got[i].value, sent[i].value) << "seed " << seed;
    }
  }
}

TEST(NetProtocol, ResponseRoundTripRandomChunks) {
  const std::uint64_t seed = test::harness_seed(0xFACEFEEDull);
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 10; ++round) {
    std::vector<ResponseFrame> sent;
    Bytes stream;
    for (int i = 0; i < 50; ++i) {
      sent.push_back(random_response(rng));
      encode_response(sent.back(), &stream);
    }
    ResponseDecoder dec;
    const auto got = chunked_decode<ResponseDecoder, ResponseFrame>(
        dec, stream, rng);
    ASSERT_EQ(got.size(), sent.size()) << "seed " << seed;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].opcode, sent[i].opcode) << "seed " << seed;
      EXPECT_EQ(got[i].status, sent[i].status) << "seed " << seed;
      EXPECT_EQ(got[i].request_id, sent[i].request_id) << "seed " << seed;
      EXPECT_EQ(got[i].extra, sent[i].extra) << "seed " << seed;
      EXPECT_EQ(got[i].value, sent[i].value) << "seed " << seed;
    }
  }
}

TEST(NetProtocol, TruncatedHeaderNeedsMore) {
  RequestFrame f;
  f.opcode = Opcode::kPut;
  f.key = {'k'};
  f.value = {'v'};
  Bytes stream;
  encode_request(f, &stream);
  // Every proper prefix of the frame must leave the decoder waiting,
  // never producing a frame or a fatal status.
  for (std::size_t cut = 0; cut < stream.size(); ++cut) {
    RequestDecoder dec;
    dec.feed(ByteSpan(stream.data(), cut));
    RequestFrame out;
    EXPECT_EQ(dec.next(&out), DecodeStatus::kNeedMore) << "cut " << cut;
  }
}

TEST(NetProtocol, SingleBitHeaderCorruptionIsFatal) {
  RequestFrame f;
  f.opcode = Opcode::kGet;
  f.request_id = 42;
  f.key = {'a', 'b', 'c'};
  Bytes good;
  encode_request(f, &good);
  for (std::size_t byte = 0; byte < kRequestHeaderSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = good;
      bad[byte] ^= static_cast<std::uint8_t>(1u << bit);
      RequestDecoder dec;
      dec.feed(ByteSpan(bad));
      RequestFrame out;
      const DecodeStatus ds = dec.next(&out);
      EXPECT_TRUE(decode_fatal(ds))
          << "flip at byte " << byte << " bit " << bit
          << " produced status " << static_cast<int>(ds);
      // Poisoned: the decoder refuses to resynchronize even if clean
      // bytes follow.
      dec.feed(ByteSpan(good));
      EXPECT_TRUE(decode_fatal(dec.next(&out)));
    }
  }
}

TEST(NetProtocol, OversizedDeclarationRejectedBeforeBody) {
  WireLimits limits;
  limits.max_key_len = 16;
  limits.max_value_len = 64;
  RequestFrame f;
  f.opcode = Opcode::kPut;
  f.key.resize(17);   // over the key limit
  f.value.resize(8);
  Bytes stream;
  encode_request(f, &stream);
  RequestDecoder dec(limits);
  // Header only: the decoder must reject from the declared lengths
  // alone, without waiting for (or buffering) the body.
  dec.feed(ByteSpan(stream.data(), kRequestHeaderSize));
  RequestFrame out;
  EXPECT_EQ(dec.next(&out), DecodeStatus::kTooLarge);

  RequestFrame g;
  g.opcode = Opcode::kPut;
  g.key.resize(4);
  g.value.resize(65);  // over the value limit
  Bytes stream2;
  encode_request(g, &stream2);
  RequestDecoder dec2(limits);
  dec2.feed(ByteSpan(stream2.data(), kRequestHeaderSize));
  EXPECT_EQ(dec2.next(&out), DecodeStatus::kTooLarge);
}

// Regression: the response decoder's kTooLarge ceiling must scale with
// WireLimits::max_iter_keys — a full-sized ITER key list (max_iter_keys
// keys of max_key_len bytes) is a valid frame the server can send, so
// the client must never reject it. A hardcoded smaller allowance used
// to poison the decoder on legitimate large responses.
TEST(NetProtocol, ResponseCapScalesWithMaxIterKeys) {
  WireLimits limits;
  limits.max_key_len = 8;
  limits.max_value_len = 16;
  limits.max_iter_keys = 4;
  const std::size_t cap =
      limits.max_value_len + (limits.max_key_len + 2) * limits.max_iter_keys;

  ResponseFrame f;
  f.opcode = Opcode::kIter;
  f.status = api::KvsResult::KVS_SUCCESS;
  f.value.resize(cap);  // exactly at the ceiling: must decode
  Bytes stream;
  encode_response(f, &stream);
  ResponseDecoder dec(limits);
  dec.feed(ByteSpan(stream));
  ResponseFrame out;
  EXPECT_EQ(dec.next(&out), DecodeStatus::kFrame);
  EXPECT_EQ(out.value.size(), cap);

  f.value.resize(cap + 1);  // one byte over: rejected from the header
  Bytes stream2;
  encode_response(f, &stream2);
  ResponseDecoder dec2(limits);
  dec2.feed(ByteSpan(stream2.data(), kResponseHeaderSize));
  EXPECT_EQ(dec2.next(&out), DecodeStatus::kTooLarge);
}

TEST(NetProtocol, RandomGarbageNeverDecodes) {
  const std::uint64_t seed = test::harness_seed(0xDEADBEEFull);
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 200; ++round) {
    Bytes junk(64 + rng() % 512);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    RequestDecoder dec;
    dec.feed(ByteSpan(junk));
    RequestFrame out;
    const DecodeStatus ds = dec.next(&out);
    // A 1-in-2^32 magic collision still fails the CRC; garbage must
    // never parse into a frame.
    EXPECT_NE(ds, DecodeStatus::kFrame) << "seed " << seed;
  }
}

TEST(NetProtocol, BadOpcodeAndFlagsFatal) {
  RequestFrame f;
  f.opcode = Opcode::kPut;
  f.key = {'k'};
  Bytes stream;
  encode_request(f, &stream);

  auto patch_and_fix_crc = [](Bytes frame, std::size_t off,
                              std::uint8_t val) {
    frame[off] = val;
    const std::uint32_t crc = crc32(ByteSpan(frame.data(), 28));
    put_u32(MutByteSpan(frame.data(), frame.size()), 28, crc);
    return frame;
  };

  // 9 = one past kIterClose, the highest assigned opcode.
  for (const std::uint8_t bad_op : {std::uint8_t{0}, std::uint8_t{9},
                                    std::uint8_t{255}}) {
    const Bytes bad = patch_and_fix_crc(stream, 4, bad_op);
    RequestDecoder dec;
    dec.feed(ByteSpan(bad));
    RequestFrame out;
    EXPECT_EQ(dec.next(&out), DecodeStatus::kBadFrame) << int(bad_op);
  }
  const Bytes bad_flags = patch_and_fix_crc(stream, 5, 1);
  RequestDecoder dec;
  dec.feed(ByteSpan(bad_flags));
  RequestFrame out;
  EXPECT_EQ(dec.next(&out), DecodeStatus::kBadFrame);
}

TEST(NetProtocol, KeyListRoundTripAndStrictness) {
  const std::uint64_t seed = test::harness_seed(0x11575EEDull);
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::string> keys(rng() % 40);
    for (auto& k : keys) {
      k.resize(rng() % 64);
      for (auto& c : k) c = static_cast<char>(rng());
    }
    Bytes payload;
    encode_key_list(keys, &payload);
    std::vector<std::string> back;
    ASSERT_TRUE(decode_key_list(ByteSpan(payload),
                                static_cast<std::uint32_t>(keys.size()),
                                &back))
        << "seed " << seed;
    EXPECT_EQ(back, keys) << "seed " << seed;

    if (!payload.empty()) {
      // Truncated payload, wrong count, and trailing junk all fail.
      EXPECT_FALSE(decode_key_list(
          ByteSpan(payload.data(), payload.size() - 1),
          static_cast<std::uint32_t>(keys.size()), &back));
      EXPECT_FALSE(decode_key_list(
          ByteSpan(payload),
          static_cast<std::uint32_t>(keys.size()) + 1, &back));
      Bytes padded = payload;
      padded.push_back(0);
      EXPECT_FALSE(decode_key_list(
          ByteSpan(padded), static_cast<std::uint32_t>(keys.size()), &back));
    }
  }
}

}  // namespace
}  // namespace rhik::net
