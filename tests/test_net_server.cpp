// End-to-end tests for the serving layer (net/server.hpp): real sockets
// over loopback, a real api::KvsDevice behind the server. Covers the
// verb set, pipelining, tenant isolation + quotas, admission control,
// graceful shutdown draining, and the killed-client path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/kvs.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace rhik::net {
namespace {

using api::KvsResult;

api::KvsDeviceOptions small_opts() {
  api::KvsDeviceOptions opts;
  opts.capacity_bytes = 64ull << 20;
  opts.dram_cache_bytes = 1 << 20;
  opts.enable_iterator = true;
  return opts;
}

struct ServerFixture {
  explicit ServerFixture(api::KvsDeviceOptions dopts = small_opts(),
                         ServerConfig scfg = {})
      : dev(dopts), server(dev, scfg) {
    EXPECT_EQ(server.start(), Status::kOk);
  }
  ~ServerFixture() { server.stop(); }
  KvClient client(std::uint32_t tenant = 0) {
    KvClient::Options copts;
    copts.tenant_id = tenant;
    KvClient c(copts);
    EXPECT_EQ(c.connect("127.0.0.1", server.port()), Status::kOk);
    return c;
  }
  api::KvsDevice dev;
  KvServer server;
};

TEST(NetServer, PutGetDelIterRoundTrip) {
  ServerFixture fx;
  KvClient c = fx.client();
  EXPECT_EQ(c.put("user:1", "alice"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(c.put("user:2", "bob"), KvsResult::KVS_SUCCESS);
  Bytes v;
  EXPECT_EQ(c.get("user:1", &v), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(v), "alice");
  EXPECT_EQ(c.get("ghost", &v), KvsResult::KVS_ERR_KEY_NOT_EXIST);

  std::vector<std::string> keys;
  EXPECT_EQ(c.iterate("user:", 0, &keys), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys[0], "user:1");

  EXPECT_EQ(c.del("user:1"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(c.get("user:1", &v), KvsResult::KVS_ERR_KEY_NOT_EXIST);
  EXPECT_EQ(c.del("user:1"), KvsResult::KVS_ERR_KEY_NOT_EXIST);
}

TEST(NetServer, EmptyAndOversizedKeysRejected) {
  ServerFixture fx;
  KvClient c = fx.client();
  EXPECT_EQ(c.put("", "v"), KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
  // 255 minus the 4-byte tenant prefix is the ceiling; one over fails.
  const std::string long_key(252, 'k');
  EXPECT_EQ(c.put(long_key, "v"), KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
  EXPECT_EQ(c.put(std::string(251, 'k'), "v"), KvsResult::KVS_SUCCESS);
}

// Regression: requests that cannot be framed fail per-call on the
// client — they used to be encoded anyway, either killing the
// connection (key > wire max_key_len → server kTooLarge) or desyncing
// the stream (key > 65535 → u16 header truncation with all key bytes
// appended).
TEST(NetServer, ClientRejectsUnframeableRequestsPerCall) {
  ServerFixture fx;
  KvClient c = fx.client();
  // Over the wire key limit (default 1024) but within the u16 field.
  EXPECT_EQ(c.put(std::string(2000, 'k'), "v"),
            KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
  // Over the u16 key-len field width.
  EXPECT_EQ(c.put(std::string(70000, 'k'), "v"),
            KvsResult::KVS_ERR_KEY_LENGTH_INVALID);
  // Over the wire value limit (default 4 MiB).
  EXPECT_EQ(c.put("k", std::string((4u << 20) + 1, 'v')),
            KvsResult::KVS_ERR_VALUE_LENGTH_INVALID);
  // Pipelined submits return the 0 sentinel and encode nothing.
  EXPECT_EQ(c.submit_put(std::string(70000, 'k'), "v"), 0u);
  EXPECT_EQ(c.flush(), Status::kOk);  // empty batch: nothing was queued
  // The connection survives every rejection.
  EXPECT_EQ(c.put("alive", "yes"), KvsResult::KVS_SUCCESS);
  Bytes v;
  EXPECT_EQ(c.get("alive", &v), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(v), "yes");
}

TEST(NetServer, PipelinedBatchAllAnswered) {
  ServerFixture fx;
  KvClient c = fx.client();
  constexpr int kN = 200;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kN; ++i) {
    ids.push_back(c.submit_put("p:" + std::to_string(i),
                               "v" + std::to_string(i)));
  }
  ASSERT_EQ(c.flush(), Status::kOk);
  // Responses may arrive out of order; every id must be answered once.
  std::vector<bool> seen(static_cast<std::size_t>(kN), false);
  for (int i = 0; i < kN; ++i) {
    ResponseFrame f;
    ASSERT_EQ(c.recv_response(&f), Status::kOk);
    EXPECT_EQ(f.status, KvsResult::KVS_SUCCESS);
    const auto it = std::find(ids.begin(), ids.end(), f.request_id);
    ASSERT_NE(it, ids.end());
    const auto idx = static_cast<std::size_t>(it - ids.begin());
    EXPECT_FALSE(seen[idx]) << "double-delivered id " << f.request_id;
    seen[idx] = true;
  }
  // Reads verify the writes landed.
  Bytes v;
  EXPECT_EQ(c.get("p:137", &v), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(v), "v137");
}

TEST(NetServer, TenantNamespacesAreIsolated) {
  ServerFixture fx;
  KvClient alice = fx.client(1);
  KvClient bob = fx.client(2);
  EXPECT_EQ(alice.put("shared-name", "alice-data"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(bob.put("shared-name", "bob-data"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(bob.put("bob-only", "x"), KvsResult::KVS_SUCCESS);

  Bytes v;
  ASSERT_EQ(alice.get("shared-name", &v), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(v), "alice-data");
  ASSERT_EQ(bob.get("shared-name", &v), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(rhik::to_string(v), "bob-data");
  EXPECT_EQ(alice.get("bob-only", &v), KvsResult::KVS_ERR_KEY_NOT_EXIST);

  // Iteration cannot enumerate across the namespace boundary either.
  std::vector<std::string> keys;
  ASSERT_EQ(alice.iterate("", 0, &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "shared-name");
  ASSERT_EQ(bob.iterate("", 0, &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(NetServer, IterateSortedOverShardedBackend) {
  api::KvsDeviceOptions dopts = small_opts();
  dopts.capacity_bytes = 1ull << 30;
  dopts.num_shards = 4;
  ServerFixture fx(dopts);
  ASSERT_TRUE(fx.dev.sharded());
  KvClient c = fx.client(7);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(c.put("it:" + std::to_string(i), "v"), KvsResult::KVS_SUCCESS);
  }
  std::vector<std::string> keys;
  ASSERT_EQ(c.iterate("it:", 0, &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 32u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // The limit caps the response; sortedness makes the cut deterministic.
  ASSERT_EQ(c.iterate("it:", 5, &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys[0], "it:0");
}

TEST(NetServer, UnknownTenantRejectedWhenDisallowed) {
  ServerConfig scfg;
  scfg.allow_unknown_tenants = false;
  ServerFixture fx(small_opts(), scfg);
  fx.server.tenants().configure(1, {}, KvServer::wall_now_ns());
  KvClient known = fx.client(1);
  KvClient unknown = fx.client(99);
  EXPECT_EQ(known.put("k", "v"), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(unknown.put("k", "v"), KvsResult::KVS_ERR_OPTION_INVALID);
}

TEST(NetServer, RateLimitedTenantSeesQueueFullThenRecovers) {
  ServerFixture fx;
  TenantConfig quota;
  quota.ops_per_sec = 50;
  quota.burst = 10;
  fx.server.tenants().configure(3, quota, KvServer::wall_now_ns());
  KvClient c = fx.client(3);

  int ok = 0, throttled = 0;
  for (int i = 0; i < 60; ++i) {
    const KvsResult r = c.put("rl:" + std::to_string(i), "v");
    if (r == KvsResult::KVS_SUCCESS) ok++;
    else if (r == KvsResult::KVS_ERR_QUEUE_FULL) throttled++;
    else FAIL() << "unexpected status " << api::to_string(r);
  }
  // Burst of 10 plus whatever refills during the loop — far below 60.
  EXPECT_GE(ok, 10);
  EXPECT_GT(throttled, 0);

  // QUEUE_FULL is retryable by contract: after a refill interval the
  // same request succeeds.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(c.put("rl:retry", "v"), KvsResult::KVS_SUCCESS);

  const auto snap = fx.server.metrics_snapshot();
  EXPECT_EQ(snap.counter("net.tenant.3.throttled"),
            static_cast<std::uint64_t>(throttled));
  EXPECT_GT(snap.counter("net.throttled"), 0u);
}

TEST(NetServer, AdmissionCapAnswersEveryRequest) {
  ServerConfig scfg;
  scfg.max_conn_inflight = 4;  // tiny pipeline budget
  ServerFixture fx(small_opts(), scfg);
  KvClient c = fx.client();
  constexpr int kN = 64;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kN; ++i) {
    ids.push_back(c.submit_put("adm:" + std::to_string(i), "v"));
  }
  ASSERT_EQ(c.flush(), Status::kOk);
  int ok = 0, rejected = 0;
  for (int i = 0; i < kN; ++i) {
    ResponseFrame f;
    ASSERT_EQ(c.recv_response(&f), Status::kOk) << "lost response " << i;
    if (f.status == KvsResult::KVS_SUCCESS) ok++;
    else if (f.status == KvsResult::KVS_ERR_QUEUE_FULL) rejected++;
    else FAIL() << "unexpected status " << api::to_string(f.status);
  }
  // Over-limit requests are rejected loudly, never dropped: all kN
  // answered, successes + rejections account for every one.
  EXPECT_EQ(ok + rejected, kN);
  EXPECT_GT(ok, 0);
  if (rejected > 0) {
    EXPECT_GT(fx.server.metrics_snapshot().counter("net.admission_rejects"),
              0u);
  }
}

TEST(NetServer, StatusOpcodeReturnsParseableSnapshot) {
  ServerFixture fx;
  KvClient c = fx.client(5);
  ASSERT_EQ(c.put("s:1", "v"), KvsResult::KVS_SUCCESS);
  std::string json;
  ASSERT_EQ(c.status_json(&json), KvsResult::KVS_SUCCESS);
  auto snap = obs::MetricsSnapshot::from_json(json);
  ASSERT_TRUE(snap.has_value()) << json.substr(0, 200);
  EXPECT_GT(snap->counter("net.requests"), 0u);
  EXPECT_GT(snap->counter("net.tenant.5.ops"), 0u);
  EXPECT_GT(snap->counter("net.tenant.5.bytes"), 0u);
  const Histogram* lat = snap->timer("net.tenant.5.latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->count(), 0u);
}

TEST(NetServer, GracefulStopDrainsPipelinedResponses) {
  ServerFixture fx;
  KvClient c = fx.client();
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    c.submit_put("drain:" + std::to_string(i), std::string(128, 'x'));
  }
  ASSERT_EQ(c.flush(), Status::kOk);
  // Wait until the server has admitted the whole batch — requests still
  // sitting unread in the socket when stop() lands are not in-flight
  // and carry no drain guarantee.
  while (fx.server.metrics_snapshot().counter("net.requests") <
         static_cast<std::uint64_t>(kN)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Stop while the batch is in flight: stop() must harvest and deliver
  // every completion before any socket closes.
  std::thread stopper([&] { fx.server.stop(); });
  int answered = 0;
  for (int i = 0; i < kN; ++i) {
    ResponseFrame f;
    if (c.recv_response(&f) != Status::kOk) break;
    EXPECT_EQ(f.status, KvsResult::KVS_SUCCESS);
    answered++;
  }
  stopper.join();
  EXPECT_EQ(answered, kN) << "graceful stop lost responses";
}

TEST(NetServer, KilledClientMidPipelineLeavesServerHealthy) {
  ServerFixture fx;
  {
    KvClient doomed = fx.client();
    for (int i = 0; i < 256; ++i) {
      doomed.submit_put("kill:" + std::to_string(i), std::string(256, 'y'));
    }
    ASSERT_EQ(doomed.flush(), Status::kOk);
    // Destructor closes the socket with every response undelivered.
  }
  // The server must reap the in-flight completions (exactly once, to
  // nobody) and keep serving. Wait for the in-flight gauge to drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    if (fx.server.metrics_snapshot().gauge("net.inflight") == 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "in-flight commands never drained after client death";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  KvClient c = fx.client();
  EXPECT_EQ(c.put("alive", "yes"), KvsResult::KVS_SUCCESS);
  Bytes v;
  EXPECT_EQ(c.get("alive", &v), KvsResult::KVS_SUCCESS);
  // The doomed writes themselves still executed — admission happened
  // before the client died; only delivery was impossible.
  EXPECT_EQ(c.get("ghost", &v), KvsResult::KVS_ERR_KEY_NOT_EXIST);
}

TEST(NetServer, ConcurrentClientsMultiWorkerMixedOps) {
  api::KvsDeviceOptions dopts = small_opts();
  dopts.capacity_bytes = 1ull << 30;
  dopts.num_shards = 2;
  ServerConfig scfg;
  scfg.num_workers = 2;
  ServerFixture fx(dopts, scfg);
  constexpr int kThreads = 4;
  constexpr int kOpsPer = 150;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KvClient::Options copts;
      copts.tenant_id = static_cast<std::uint32_t>(t % 2);
      KvClient c(copts);
      if (c.connect("127.0.0.1", fx.server.port()) != Status::kOk) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kOpsPer; ++i) {
        const std::string key = "t" + std::to_string(t) + ":" +
                                std::to_string(i % 37);
        KvsResult r = c.put(key, "v" + std::to_string(i));
        if (r != KvsResult::KVS_SUCCESS) failures.fetch_add(1);
        Bytes v;
        r = c.get(key, &v);
        if (r != KvsResult::KVS_SUCCESS) failures.fetch_add(1);
        if (i % 7 == 0 && c.del(key) != KvsResult::KVS_SUCCESS) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto snap = fx.server.metrics_snapshot();
  EXPECT_GE(snap.counter("net.requests"),
            static_cast<std::uint64_t>(kThreads * kOpsPer * 2));
  EXPECT_EQ(snap.counter("net.decode_errors"), 0u);
}

// -- Cursored scans (ITER_OPEN / ITER_NEXT / ITER_CLOSE) -----------------------

TEST(NetServerCursor, StreamsBeyondOneShotCeiling) {
  // Regression for the one-shot ITER truncation bug: with an 8-key
  // per-response ceiling a 30-key scan used to silently return 8.
  ServerConfig scfg;
  scfg.max_iter_keys = 8;
  ServerFixture fx(small_opts(), scfg);
  KvClient c = fx.client(1);
  std::vector<std::string> expect;
  for (int i = 0; i < 30; ++i) {
    const std::string k = "big:" + std::to_string(i);
    ASSERT_EQ(c.put(k, "v"), KvsResult::KVS_SUCCESS);
    expect.push_back(k);
  }
  std::sort(expect.begin(), expect.end());
  // The collect-all wrapper drains the cursor past the ceiling.
  std::vector<std::string> keys;
  ASSERT_EQ(c.iterate("big:", 0, &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys, expect);
  // Raw cursor verbs: batches respect the ceiling, exhaustion is
  // KEY_NOT_EXIST (not an error), close succeeds.
  IterToken tok;
  ASSERT_EQ(c.iter_open("big:", &tok), KvsResult::KVS_SUCCESS);
  std::size_t total = 0;
  std::vector<std::string> batch;
  KvsResult r;
  while ((r = c.iter_next(tok, 0, &batch)) == KvsResult::KVS_SUCCESS) {
    EXPECT_LE(batch.size(), 8u);
    total += batch.size();
  }
  EXPECT_EQ(r, KvsResult::KVS_ERR_KEY_NOT_EXIST);
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(c.iter_close(tok), KvsResult::KVS_SUCCESS);
}

TEST(NetServerCursor, PinsOneEpochUnderChurn) {
  ServerFixture fx;
  KvClient c = fx.client(2);
  std::vector<std::string> expect;
  for (int i = 0; i < 12; ++i) {
    const std::string k = "chn:" + std::to_string(i);
    ASSERT_EQ(c.put(k, "v0"), KvsResult::KVS_SUCCESS);
    expect.push_back(k);
  }
  std::sort(expect.begin(), expect.end());
  IterToken tok;
  ASSERT_EQ(c.iter_open("chn:", &tok), KvsResult::KVS_SUCCESS);
  // Churn after the cursor pinned its epoch: new keys, an overwrite and
  // a delete. None of it may leak into the pinned scan.
  for (int i = 12; i < 24; ++i) {
    ASSERT_EQ(c.put("chn:" + std::to_string(i), "late"),
              KvsResult::KVS_SUCCESS);
  }
  ASSERT_EQ(c.put("chn:0", "v1"), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(c.del("chn:1"), KvsResult::KVS_SUCCESS);

  std::vector<std::string> got;
  std::vector<std::string> batch;
  KvsResult r;
  while ((r = c.iter_next(tok, 5, &batch)) == KvsResult::KVS_SUCCESS) {
    got.insert(got.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(r, KvsResult::KVS_ERR_KEY_NOT_EXIST);
  EXPECT_EQ(c.iter_close(tok), KvsResult::KVS_SUCCESS);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
  // A fresh scan sees the churned reality: 23 keys (24 minus the
  // deleted chn:1).
  std::vector<std::string> now;
  ASSERT_EQ(c.iterate("chn:", 0, &now), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(now.size(), 23u);
}

TEST(NetServerCursor, TokenIsConnectionScoped) {
  ServerFixture fx;
  KvClient alice = fx.client(1);
  KvClient bob = fx.client(2);
  ASSERT_EQ(alice.put("tk:1", "v"), KvsResult::KVS_SUCCESS);
  IterToken tok;
  ASSERT_EQ(alice.iter_open("tk:", &tok), KvsResult::KVS_SUCCESS);
  // Cursors are connection state: a stolen token is meaningless on
  // another connection, so it can never enumerate a foreign namespace.
  std::vector<std::string> keys;
  EXPECT_EQ(bob.iter_next(tok, 0, &keys), KvsResult::KVS_ERR_OPTION_INVALID);
  EXPECT_EQ(bob.iter_close(tok), KvsResult::KVS_ERR_OPTION_INVALID);
  // A garbage token on the owning connection is rejected the same way.
  IterToken bogus;
  bogus.cursor_id = 9999;
  bogus.epoch = tok.epoch;
  EXPECT_EQ(alice.iter_next(bogus, 0, &keys),
            KvsResult::KVS_ERR_OPTION_INVALID);
  // The real cursor is unharmed by the rejections.
  EXPECT_EQ(alice.iter_next(tok, 0, &keys), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_EQ(alice.iter_close(tok), KvsResult::KVS_SUCCESS);
}

TEST(NetServerCursor, PerConnectionCapReturnsIteratorMax) {
  ServerConfig scfg;
  scfg.max_conn_cursors = 2;
  ServerFixture fx(small_opts(), scfg);
  KvClient c = fx.client();
  ASSERT_EQ(c.put("cap:1", "v"), KvsResult::KVS_SUCCESS);
  IterToken t1, t2, t3;
  ASSERT_EQ(c.iter_open("cap:", &t1), KvsResult::KVS_SUCCESS);
  ASSERT_EQ(c.iter_open("cap:", &t2), KvsResult::KVS_SUCCESS);
  // Retryable by contract: close one and the open succeeds.
  EXPECT_EQ(c.iter_open("cap:", &t3), KvsResult::KVS_ERR_ITERATOR_MAX);
  ASSERT_EQ(c.iter_close(t1), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(c.iter_open("cap:", &t3), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(c.iter_close(t2), KvsResult::KVS_SUCCESS);
  EXPECT_EQ(c.iter_close(t3), KvsResult::KVS_SUCCESS);
}

TEST(NetServerCursor, AbandonedCursorsReapedOnDisconnect) {
  ServerFixture fx;
  {
    KvClient doomed = fx.client();
    ASSERT_EQ(doomed.put("rp:1", "v"), KvsResult::KVS_SUCCESS);
    IterToken t1, t2;
    ASSERT_EQ(doomed.iter_open("rp:", &t1), KvsResult::KVS_SUCCESS);
    ASSERT_EQ(doomed.iter_open("rp:", &t2), KvsResult::KVS_SUCCESS);
    EXPECT_EQ(fx.server.metrics_snapshot().gauge("net.cursors"), 2);
    // Destructor closes the socket with both cursors open.
  }
  // The server must reap them — an abandoned cursor would pin version
  // retention forever.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    if (fx.server.metrics_snapshot().gauge("net.cursors") == 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "abandoned cursors never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto snap = fx.server.metrics_snapshot();
  EXPECT_EQ(snap.counter("net.cursors_reaped"), 2u);
  // Reaping released the snapshot pins on the device too. Read through
  // the server (backend lock): the gauge poll above does not order the
  // worker's reap against a bare dev.metrics_snapshot() from here.
  const auto dev_snap = fx.server.device_metrics();
  EXPECT_EQ(dev_snap.counter("snapshot.opened"),
            dev_snap.counter("snapshot.released"));
  EXPECT_GE(dev_snap.counter("snapshot.opened"), 2u);
}

}  // namespace
}  // namespace rhik::net
