// Unit tests for the log-structured KV data path (small pairs packed into
// shared pages, large pairs as multi-page extents, Fig. 4).
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "ftl/kv_store.hpp"

namespace rhik::ftl {
namespace {

using flash::Geometry;
using flash::NandLatency;

class StoreTest : public ::testing::Test {
 protected:
  StoreTest()
      : nand_(Geometry::tiny(32), NandLatency::kvemu_defaults(), &clock_),
        alloc_(&nand_, 2),
        store_(&nand_, &alloc_) {}

  Result<flash::Ppa> put(std::uint64_t sig, const std::string& key,
                         const std::string& value) {
    return store_.write_pair(sig, as_bytes(key), as_bytes(value));
  }

  SimClock clock_;
  flash::NandDevice nand_;
  PageAllocator alloc_;
  FlashKvStore store_;
};

TEST_F(StoreTest, WriteThenReadSmallPair) {
  auto ppa = put(42, "hello", "world");
  ASSERT_TRUE(ppa);
  Bytes key, value;
  ASSERT_EQ(store_.read_pair(*ppa, 42, &key, &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(key), "hello");
  EXPECT_EQ(rhik::to_string(value), "world");
}

TEST_F(StoreTest, SmallPairsShareAPage) {
  auto p1 = put(1, "key-a", "vvv");
  auto p2 = put(2, "key-b", "www");
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, *p2);  // both buffered into the same open head page
  // Both readable from the open buffer (not yet programmed).
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(*p1, 1, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "vvv");
  ASSERT_EQ(store_.read_pair(*p2, 2, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "www");
}

TEST_F(StoreTest, ReadAfterFlushHitsFlash) {
  auto ppa = put(7, "kk", "flushed-value");
  ASSERT_TRUE(ppa);
  ASSERT_EQ(store_.flush(), Status::kOk);
  EXPECT_FALSE(store_.open_page().has_value());
  Bytes k, v;
  const auto reads_before = nand_.stats().page_reads;
  ASSERT_EQ(store_.read_pair(*ppa, 7, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "flushed-value");
  EXPECT_GT(nand_.stats().page_reads, reads_before);
}

TEST_F(StoreTest, PageRollsOverWhenFull) {
  // 4 KiB pages; ~36 pairs of ~110 B fill a page.
  flash::Ppa first = 0;
  flash::Ppa last = 0;
  for (int i = 0; i < 80; ++i) {
    auto ppa = put(1000 + i, "key-" + std::to_string(i), std::string(90, 'x'));
    ASSERT_TRUE(ppa);
    if (i == 0) first = *ppa;
    last = *ppa;
  }
  EXPECT_NE(first, last);
  // Early pairs are on flash now; still readable.
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(first, 1000, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(k), "key-0");
}

TEST_F(StoreTest, LargeValueExtentRoundTrip) {
  // 4 KiB pages, value spanning ~5 pages.
  std::string value(18000, '\0');
  Rng rng(1);
  for (auto& c : value) c = static_cast<char>('a' + rng.next_below(26));
  auto ppa = put(77, "big-key", value);
  ASSERT_TRUE(ppa);
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(*ppa, 77, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(k), "big-key");
  EXPECT_EQ(rhik::to_string(v), value);
  EXPECT_EQ(store_.stats().extents_written, 1u);
}

TEST_F(StoreTest, ExtentFlushesOpenPageFirst) {
  auto small = put(1, "small", "s");
  ASSERT_TRUE(small);
  auto big = put(2, "big", std::string(10000, 'B'));
  ASSERT_TRUE(big);
  // The small pair's page was programmed before the extent.
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(*small, 1, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "s");
  ASSERT_EQ(store_.read_pair(*big, 2, &k, &v), Status::kOk);
  EXPECT_EQ(v.size(), 10000u);
}

TEST_F(StoreTest, ReadPairMetaSkipsValue) {
  const std::string value(12000, 'M');
  auto ppa = put(5, "meta-key", value);
  ASSERT_TRUE(ppa);
  const auto reads_before = nand_.stats().page_reads;
  auto meta = store_.read_pair_meta(*ppa, 5);
  ASSERT_TRUE(meta);
  EXPECT_EQ(rhik::to_string(ByteSpan{meta->key}), "meta-key");
  EXPECT_EQ(meta->value_len, 12000u);
  EXPECT_EQ(meta->total_bytes, PairHeader::kSize + 8 + 12000);
  // Only the head page was read (continuation pages skipped).
  EXPECT_LE(nand_.stats().page_reads - reads_before, 1u);
}

TEST_F(StoreTest, MissingSignatureIsNotFound) {
  auto ppa = put(10, "aa", "bb");
  ASSERT_TRUE(ppa);
  Bytes k, v;
  EXPECT_EQ(store_.read_pair(*ppa, 999, &k, &v), Status::kNotFound);
  EXPECT_EQ(store_.read_pair_meta(*ppa, 999).status(), Status::kNotFound);
}

TEST_F(StoreTest, DuplicateSigInPageReturnsNewest) {
  // An update that lands in the same open page: the parser must prefer
  // the most recently appended version.
  auto p1 = put(33, "dup", "old");
  auto p2 = put(33, "dup", "new!");
  ASSERT_TRUE(p1 && p2);
  ASSERT_EQ(*p1, *p2);
  Bytes k, v;
  ASSERT_EQ(store_.read_pair(*p2, 33, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "new!");
}

TEST_F(StoreTest, NullOutputsSkipCopies) {
  auto ppa = put(21, "null-out", std::string(6000, 'n'));
  ASSERT_TRUE(ppa);
  // Key-only verification path: no value output requested.
  Bytes k;
  ASSERT_EQ(store_.read_pair(*ppa, 21, &k, nullptr), Status::kOk);
  EXPECT_EQ(rhik::to_string(k), "null-out");
  // Neither output requested: pure existence probe of the pair.
  ASSERT_EQ(store_.read_pair(*ppa, 21, nullptr, nullptr), Status::kOk);
}

TEST_F(StoreTest, InvalidInputsRejected) {
  EXPECT_EQ(put(1, "", "v").status(), Status::kInvalidArgument);
  const std::string huge(store_.max_value_size(3) + 1, 'x');
  EXPECT_EQ(put(1, "key", huge).status(), Status::kInvalidArgument);
}

TEST_F(StoreTest, MaxValueSizeFitsOneBlock) {
  const auto& g = nand_.geometry();
  const std::uint64_t max = store_.max_value_size(8);
  const std::uint64_t pair = FlashKvStore::pair_bytes(8, max);
  EXPECT_LE(extent_pages(g, pair), g.pages_per_block);
  // One byte more would exceed the single-block extent cap.
  EXPECT_GT(extent_pages(g, pair + 1), g.pages_per_block);
}

TEST_F(StoreTest, LiveBytesAccountedOnWriteAndStale) {
  auto ppa = put(9, "acct", "0123456789");
  ASSERT_TRUE(ppa);
  const std::uint32_t blk = flash::ppa_block(nand_.geometry(), *ppa);
  const std::uint64_t pair = FlashKvStore::pair_bytes(4, 10);
  EXPECT_EQ(alloc_.block_live_bytes(blk), pair);
  store_.note_stale(*ppa, pair);
  EXPECT_EQ(alloc_.block_live_bytes(blk), 0u);
}

TEST_F(StoreTest, ManyPairsSurviveChurn) {
  Rng rng(4);
  std::vector<std::pair<std::uint64_t, flash::Ppa>> live;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "churn-" + std::to_string(i);
    const std::string value(rng.next_range(1, 300), 'c');
    auto ppa = put(5000 + i, key, value);
    ASSERT_TRUE(ppa);
    live.emplace_back(5000 + i, *ppa);
  }
  Rng check(7);
  for (int i = 0; i < 100; ++i) {
    const auto& [sig, ppa] = live[check.next_below(live.size())];
    Bytes k, v;
    ASSERT_EQ(store_.read_pair(ppa, sig, &k, &v), Status::kOk);
    EXPECT_EQ(rhik::to_string(k), "churn-" + std::to_string(sig - 5000));
  }
}

// Parameterized sweep across the value sizes the paper benchmarks.
class StoreValueSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StoreValueSizeTest, RoundTripAtSize) {
  SimClock clock;
  flash::NandDevice nand(Geometry::tiny(64), NandLatency::kvemu_defaults(), &clock);
  PageAllocator alloc(&nand, 2);
  FlashKvStore store(&nand, &alloc);

  const std::size_t size = GetParam();
  std::string value(size, '\0');
  for (std::size_t i = 0; i < size; ++i) value[i] = static_cast<char>('A' + i % 23);

  auto ppa = store.write_pair(123, as_bytes(std::string("szkey")), as_bytes(value));
  ASSERT_TRUE(ppa);
  Bytes k, v;
  ASSERT_EQ(store.read_pair(*ppa, 123, &k, &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), value);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StoreValueSizeTest,
                         ::testing::Values(1, 11, 100, 1000, 4000, 4086, 4087,
                                           8192, 20000, 60000));

}  // namespace
}  // namespace rhik::ftl
