// Unit + property tests for the fixed-capacity hopscotch table — the
// record-layer building block (§IV-A1).
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "hash/hopscotch.hpp"

namespace rhik::hash {
namespace {

TEST(Hopscotch, InsertFindErase) {
  HopscotchTable t(64, 8);
  EXPECT_EQ(t.insert(100, 7), Status::kOk);
  EXPECT_EQ(t.size(), 1u);
  ASSERT_TRUE(t.find(100).has_value());
  EXPECT_EQ(*t.find(100), 7u);
  EXPECT_FALSE(t.find(101).has_value());
  EXPECT_TRUE(t.erase(100));
  EXPECT_FALSE(t.erase(100));
  EXPECT_EQ(t.size(), 0u);
}

TEST(Hopscotch, InsertUpdatesInPlace) {
  HopscotchTable t(64, 8);
  EXPECT_EQ(t.insert(5, 10), Status::kOk);
  EXPECT_EQ(t.insert(5, 20), Status::kOk);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(5), 20u);
}

TEST(Hopscotch, FillToHighOccupancy) {
  // Hopscotch's selling point is high occupancy; 80% (the paper's resize
  // threshold) must insert without aborts on a realistic table.
  HopscotchTable t(1927, 32);  // Eq. 1 geometry for 32 KiB pages
  Rng rng(42);
  const std::uint32_t target = static_cast<std::uint32_t>(1927 * 0.8);
  for (std::uint32_t i = 0; i < target; ++i) {
    ASSERT_EQ(t.insert(rng.next(), i), Status::kOk) << "at " << i;
  }
  EXPECT_EQ(t.size(), target);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Hopscotch, FullTableReportsIndexFull) {
  HopscotchTable t(32, 32);  // neighbourhood covers the whole table
  std::uint32_t inserted = 0;
  Rng rng(1);
  while (inserted < 32) {
    const Status s = t.insert(rng.next(), inserted);
    ASSERT_EQ(s, Status::kOk);
    ++inserted;
  }
  EXPECT_EQ(t.insert(rng.next(), 99), Status::kIndexFull);
}

TEST(Hopscotch, CollisionAbortWhenDisplacementFails) {
  // Craft signatures that all land in one home bucket of a table whose
  // neighbourhood is tiny: the (H+1)-th insert cannot be placed.
  HopscotchTable t(64, 2);
  std::vector<std::uint64_t> same_home;
  std::uint64_t sig = 1;
  while (same_home.size() < 3) {
    if (t.home_bucket(sig) == 0) same_home.push_back(sig);
    ++sig;
  }
  EXPECT_EQ(t.insert(same_home[0], 0), Status::kOk);
  EXPECT_EQ(t.insert(same_home[1], 1), Status::kOk);
  // Third entry for the same 2-wide neighbourhood: displacement cannot
  // help because every candidate slot belongs to bucket 0 itself.
  EXPECT_EQ(t.insert(same_home[2], 2), Status::kCollisionAbort);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Hopscotch, ForEachVisitsAll) {
  HopscotchTable t(128, 16);
  for (std::uint64_t i = 1; i <= 50; ++i) {
    ASSERT_EQ(t.insert(i * 7919, i), Status::kOk);
  }
  std::uint64_t sum = 0, count = 0;
  t.for_each([&](const Record& r) {
    sum += r.ppa;
    ++count;
  });
  EXPECT_EQ(count, 50u);
  EXPECT_EQ(sum, 50u * 51u / 2);
}

TEST(Hopscotch, ClearEmptiesTable) {
  HopscotchTable t(64, 8);
  for (std::uint64_t i = 0; i < 20; ++i) ASSERT_EQ(t.insert(i * 31 + 1, i), Status::kOk);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_FALSE(t.find(i * 31 + 1));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Hopscotch, LoadSlotReconstructs) {
  HopscotchTable src(64, 8);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(src.insert(rng.next(), i), Status::kOk);

  // Rebuild via the deserialization path.
  HopscotchTable dst(64, 8);
  for (std::uint32_t b = 0; b < 64; ++b) {
    std::uint32_t info = src.hopinfo(b);
    while (info != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctz(info));
      info &= info - 1;
      const std::uint32_t idx = (b + bit) % 64;
      dst.load_slot(idx, src.slot(idx), b);
    }
  }
  EXPECT_EQ(dst.size(), src.size());
  EXPECT_TRUE(dst.check_invariants());
  src.for_each([&](const Record& r) {
    ASSERT_TRUE(dst.find(r.sig).has_value());
    EXPECT_EQ(*dst.find(r.sig), r.ppa);
  });
}

// Property test: random op sequences agree with a reference map and keep
// the hopinfo invariants, across table geometries.
struct GeomParam {
  std::uint32_t capacity;
  std::uint32_t hop;
};

class HopscotchPropertyTest : public ::testing::TestWithParam<GeomParam> {};

TEST_P(HopscotchPropertyTest, AgreesWithReferenceMap) {
  const auto [capacity, hop] = GetParam();
  HopscotchTable t(capacity, hop);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(capacity * 131 + hop);

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t sig = rng.next_below(capacity * 2) + 1;
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 5) {  // insert/update
      if (ref.size() < capacity * 7 / 10 || ref.count(sig)) {
        const std::uint64_t ppa = rng.next_below(1 << 20);
        const Status s = t.insert(sig, ppa);
        if (ok(s)) {
          ref[sig] = ppa;
        } else {
          // Abort allowed only for new keys under pressure.
          EXPECT_FALSE(ref.count(sig));
        }
      }
    } else if (action < 8) {  // lookup
      const auto got = t.find(sig);
      const auto it = ref.find(sig);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, it->second);
      }
    } else {  // erase
      EXPECT_EQ(t.erase(sig), ref.erase(sig) > 0);
    }
    if (step % 2000 == 0) ASSERT_TRUE(t.check_invariants()) << "step " << step;
  }
  EXPECT_EQ(t.size(), ref.size());
  EXPECT_TRUE(t.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HopscotchPropertyTest,
    ::testing::Values(GeomParam{64, 8}, GeomParam{240, 32}, GeomParam{1927, 32},
                      GeomParam{33, 32}, GeomParam{512, 16}));

// Wrap-around behaviour: neighbourhoods crossing the end of the array.
TEST(Hopscotch, WrapAroundNeighbourhood) {
  HopscotchTable t(33, 32);
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(t.insert(rng.next(), i), Status::kOk);
    ASSERT_TRUE(t.check_invariants());
  }
  std::uint32_t visited = 0;
  t.for_each([&](const Record&) { ++visited; });
  EXPECT_EQ(visited, 25u);
}

}  // namespace
}  // namespace rhik::hash
