// Tests for the multi-level hash baseline (the Fig. 5 comparator): level
// probing costs, capacity ceiling, no-resize behaviour.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "index/mlhash/mlhash_index.hpp"
#include "index_test_rig.hpp"

namespace rhik::index {
namespace {

using flash::Geometry;
using flash::NandLatency;

struct Rig : testutil::IndexRig<MlHashIndex, MlHashConfig> {
  explicit Rig(MlHashConfig cfg = {}, std::uint64_t cache_bytes = 1 << 20,
               std::uint32_t blocks = 256)
      : testutil::IndexRig<MlHashIndex, MlHashConfig>(cfg, cache_bytes, blocks) {}
};

TEST(MlHash, PutGetErase) {
  Rig rig;
  EXPECT_EQ(rig.index.put(10, 111), Status::kOk);
  ASSERT_TRUE(rig.index.get(10).has_value());
  EXPECT_EQ(*rig.index.get(10), 111u);
  EXPECT_FALSE(rig.index.get(11).has_value());
  EXPECT_EQ(rig.index.erase(10), Status::kOk);
  EXPECT_EQ(rig.index.erase(10), Status::kNotFound);
}

TEST(MlHash, UpdateStaysAtItsLevel) {
  Rig rig;
  ASSERT_EQ(rig.index.put(42, 1), Status::kOk);
  ASSERT_EQ(rig.index.put(42, 2), Status::kOk);
  EXPECT_EQ(rig.index.size(), 1u);
  EXPECT_EQ(*rig.index.get(42), 2u);
}

TEST(MlHash, LevelSizesAreGeometric) {
  MlHashConfig cfg;
  cfg.levels = 4;
  cfg.level0_pages = 2;
  Rig rig(cfg);
  EXPECT_EQ(rig.index.level_pages(0), 2u);
  EXPECT_EQ(rig.index.level_pages(1), 4u);
  EXPECT_EQ(rig.index.level_pages(2), 8u);
  EXPECT_EQ(rig.index.level_pages(3), 16u);
  // tiny pages: R = 240 records.
  EXPECT_EQ(rig.index.capacity(), (2u + 4 + 8 + 16) * 240);
}

TEST(MlHash, ForKeysSizesPyramid) {
  const auto cfg = MlHashConfig::for_keys(100000, 4096, 8);
  MlHashConfig check = cfg;
  // Total pages >= keys / R.
  std::uint64_t pages = 0;
  for (std::uint32_t l = 0; l < check.levels; ++l) pages += check.level0_pages << l;
  EXPECT_GE(pages * 240, 100000u);
}

TEST(MlHash, ColdLookupsCostUpToLevelsFlashReads) {
  MlHashConfig cfg;
  cfg.levels = 8;
  cfg.level0_pages = 2;
  Rig rig(cfg, /*cache_bytes=*/4096);  // 1-page cache: everything misses
  Rng rng(3);
  std::vector<std::uint64_t> sigs;
  // Fill enough that upper levels spill into lower ones.
  for (int i = 0; i < 3000; ++i) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) sigs.push_back(sig);
  }
  rig.index.reset_op_stats();
  Rng pick(5);
  for (int i = 0; i < 500; ++i) rig.index.get(sigs[pick.next_below(sigs.size())]);
  const auto& h = rig.index.op_stats().reads_per_lookup;
  EXPECT_GT(h.percentile(99), 1.0);  // multi-read lookups (vs RHIK's <= 1)
  EXPECT_LE(h.max(), 8u);

  // Negative lookups probe every level.
  rig.index.reset_op_stats();
  for (int i = 0; i < 100; ++i) rig.index.get(rng.next());
  EXPECT_GT(rig.index.op_stats().reads_per_lookup.mean(), 1.5);
}

TEST(MlHash, RejectsKeysWhenAllLevelsFull) {
  // The motivation-section behaviour (§III): a fixed pyramid supports
  // only a limited number of keys.
  MlHashConfig cfg;
  cfg.levels = 2;
  cfg.level0_pages = 1;  // capacity = 3 pages * 240
  Rig rig(cfg);
  Rng rng(4);
  std::uint64_t inserted = 0;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 2000; ++i) {
    const Status s = rig.index.put(rng.next(), i);
    if (ok(s)) {
      ++inserted;
    } else {
      ASSERT_EQ(s, Status::kIndexFull);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(inserted, rig.index.capacity());
  // Despite rejections, the index stays well below 100% occupancy
  // because per-page neighbourhoods fill unevenly.
  EXPECT_GT(inserted, rig.index.capacity() / 2);
}

TEST(MlHash, ScanVisitsEverything) {
  Rig rig;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  ASSERT_EQ(rig.index.scan([&](std::uint64_t sig, flash::Ppa ppa) {
    seen[sig] = ppa;
  }), Status::kOk);
  EXPECT_EQ(seen, ref);
}

TEST(MlHash, GcHooks) {
  Rig rig;
  ASSERT_EQ(rig.index.put(77, 500), Status::kOk);
  ASSERT_TRUE(rig.index.gc_lookup(77).has_value());
  EXPECT_EQ(rig.index.gc_update_location(77, 600), Status::kOk);
  EXPECT_EQ(*rig.index.get(77), 600u);
  EXPECT_EQ(rig.index.gc_update_location(78, 1), Status::kNotFound);
}

TEST(MlHash, DirtyPagesSurviveEvictionWriteback) {
  MlHashConfig cfg;
  cfg.levels = 4;
  cfg.level0_pages = 4;
  Rig rig(cfg, /*cache_bytes=*/2 * 4096);  // 2 cached pages
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next();
    if (ok(rig.index.put(sig, i))) ref[sig] = i;
  }
  EXPECT_GT(rig.index.op_stats().flash_writes, 0u);
  rig.expect_no_lost_writebacks();
  for (const auto& [sig, ppa] : ref) {
    ASSERT_TRUE(rig.index.get(sig).has_value());
    EXPECT_EQ(*rig.index.get(sig), ppa);
  }
}

TEST(MlHash, DramBytesCoverLevelDirectories) {
  MlHashConfig cfg;
  cfg.levels = 3;
  cfg.level0_pages = 2;
  Rig rig(cfg);
  EXPECT_EQ(rig.index.dram_bytes(), (2u + 4 + 8) * cfg.ppa_bytes);
}

TEST(MlHash, RandomOpsAgreeWithReference) {
  MlHashConfig cfg;
  cfg.levels = 6;
  cfg.level0_pages = 2;
  Rig rig(cfg, 4 * 4096);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(101);
  for (int step = 0; step < 20000; ++step) {
    rig.maybe_gc();
    const std::uint64_t sig = rng.next_below(4000) * 0x2545F491u + 3;
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 5) {
      const std::uint64_t ppa = rng.next_below(1 << 20);
      if (ok(rig.index.put(sig, ppa))) ref[sig] = ppa;
    } else if (action < 8) {
      const auto got = rig.index.get(sig);
      const auto it = ref.find(sig);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, it->second);
      }
    } else {
      const bool had = ref.erase(sig) > 0;
      EXPECT_EQ(rig.index.erase(sig), had ? Status::kOk : Status::kNotFound);
    }
  }
  EXPECT_EQ(rig.index.size(), ref.size());
  rig.expect_no_lost_writebacks();
}

}  // namespace
}  // namespace rhik::index
