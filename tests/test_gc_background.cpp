// Incremental background GC, hot/cold separation and wear leveling
// (DESIGN.md §9): scheduling behavior of background_tick(), a structural
// invariant checker run under churn for BOTH victim policies, and a
// regression bound on the erase-count spread under a 90/10 skewed
// workload with the static wear pass on vs off.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "flash/address.hpp"
#include "ftl/gc.hpp"
#include "test_seed.hpp"

namespace rhik::ftl {
namespace {

using flash::Geometry;
using flash::NandLatency;
using flash::Ppa;

/// Minimal in-RAM index standing in for RHIK (same shape as test_ftl_gc).
class MockIndexHooks : public GcIndexHooks {
 public:
  std::optional<Ppa> gc_lookup(std::uint64_t sig) override {
    auto it = map.find(sig);
    if (it == map.end()) return std::nullopt;
    return it->second;
  }
  Status gc_update_location(std::uint64_t sig, Ppa new_ppa) override {
    map[sig] = new_ppa;
    return Status::kOk;
  }
  bool gc_is_live_index_page(Ppa) const override { return false; }
  Status gc_relocate_index_page(Ppa) override { return Status::kOk; }

  std::unordered_map<std::uint64_t, Ppa> map;
};

/// One FTL stack (NAND + allocator + store + collector) plus a reference
/// model, assembled per test so tuning/separation/wear knobs can vary.
struct Rig {
  explicit Rig(GcTuning tuning, bool cold_separation = false,
               bool wear_aware = false, std::uint32_t nblocks = 64)
      : nand(Geometry::tiny(nblocks), NandLatency::kvemu_defaults(), &clock),
        alloc(&nand, 2),
        store(&nand, &alloc),
        gc(&nand, &alloc, &store, &hooks, tuning) {
    store.set_cold_separation(cold_separation);
    alloc.set_wear_aware(wear_aware);
  }

  void put(std::uint64_t sig, const std::string& value) {
    const std::string key = "k" + std::to_string(sig);
    auto ppa = store.write_pair(sig, as_bytes(key), as_bytes(value));
    ASSERT_TRUE(ppa);
    if (auto it = expect.find(sig); it != expect.end()) {
      store.note_stale(hooks.map[sig],
                       FlashKvStore::pair_bytes(key.size(), it->second.size()));
    }
    hooks.map[sig] = *ppa;
    expect[sig] = value;
  }

  void del(std::uint64_t sig) {
    const auto it = expect.find(sig);
    ASSERT_NE(it, expect.end());
    const std::string key = "k" + std::to_string(sig);
    store.note_stale(hooks.map[sig],
                     FlashKvStore::pair_bytes(key.size(), it->second.size()));
    hooks.map.erase(sig);
    expect.erase(it);
  }

  /// Structural invariants that must hold at any point:
  ///   - the block-state census sums exactly to the device size;
  ///   - free blocks carry no liveness or write point;
  ///   - no index entry points into a free (erased) block or past a
  ///     block's write point, and every entry reads back the exact pair;
  ///   - when `quiescent` (no half-collected victim whose source pages
  ///     are still counted), total per-block live bytes equal the
  ///     reference model's byte total exactly.
  void check_invariants(bool quiescent) {
    const auto& g = nand.geometry();
    const BlockCounts c = alloc.block_counts();
    ASSERT_EQ(c.free + c.active + c.sealed + c.reserved, g.num_blocks);

    std::uint64_t live_sum = 0;
    for (std::uint32_t b = 0; b < g.num_blocks; ++b) {
      if (alloc.is_free(b)) {
        ASSERT_EQ(alloc.block_live_bytes(b), 0u) << "block " << b;
        ASSERT_EQ(alloc.pages_used(b), 0u) << "block " << b;
      }
      ASSERT_LE(alloc.block_live_bytes(b), g.block_bytes()) << "block " << b;
      live_sum += alloc.block_live_bytes(b);
    }

    std::uint64_t expect_sum = 0;
    for (const auto& [sig, value] : expect) {
      const std::string key = "k" + std::to_string(sig);
      expect_sum += FlashKvStore::pair_bytes(key.size(), value.size());
      const auto it = hooks.map.find(sig);
      ASSERT_NE(it, hooks.map.end()) << sig;
      const std::uint32_t blk = flash::ppa_block(g, it->second);
      ASSERT_FALSE(alloc.is_free(blk)) << "sig " << sig << " -> erased block";
      ASSERT_LT(flash::ppa_page(g, it->second), alloc.pages_used(blk)) << sig;
      Bytes k, v;
      ASSERT_EQ(store.read_pair(it->second, sig, &k, &v), Status::kOk) << sig;
      ASSERT_EQ(rhik::to_string(k), key);
      ASSERT_EQ(rhik::to_string(v), value) << sig;
    }
    if (quiescent) {
      ASSERT_EQ(live_sum, expect_sum) << "live-byte conservation";
    }
  }

  SimClock clock;
  flash::NandDevice nand;
  PageAllocator alloc;
  FlashKvStore store;
  MockIndexHooks hooks;
  GarbageCollector gc;
  std::unordered_map<std::uint64_t, std::string> expect;
};

TEST(GcBackground, NoWorkAboveFreeBlockThreshold) {
  Rig rig({GcPolicy::kCostBenefit, /*background_free_blocks=*/2});
  EXPECT_FALSE(rig.gc.background_pending());
  bool did_work = true;
  EXPECT_EQ(rig.gc.background_tick(&did_work), Status::kOk);
  EXPECT_FALSE(did_work);
  EXPECT_EQ(rig.gc.stats().background_quanta, 0u);
}

TEST(GcBackground, DisabledWhenFreeBlocksZero) {
  // background_free_blocks = 0 turns incremental GC off entirely, even
  // under pressure — the original synchronous-only configuration.
  Rig rig({GcPolicy::kGreedy, /*background_free_blocks=*/0});
  const std::string value(700, 'd');
  std::uint64_t sig = 1;
  while (rig.alloc.free_blocks() > 3) rig.put(sig++, value);
  EXPECT_FALSE(rig.gc.background_pending());
  bool did_work = true;
  EXPECT_EQ(rig.gc.background_tick(&did_work), Status::kOk);
  EXPECT_FALSE(did_work);
}

TEST(GcBackground, CollectsOneVictimAcrossBoundedQuanta) {
  GcTuning t{GcPolicy::kCostBenefit, /*background_free_blocks=*/64,
             /*quantum_pages=*/2};
  Rig rig(t, /*cold_separation=*/true);
  // Stale-heavy churn: overwrite a small set until several blocks seal.
  const std::string value(600, 'q');
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t sig = 1; sig <= 20; ++sig) rig.put(sig, value);
  }
  ASSERT_TRUE(rig.alloc.pick_victim(t.policy).has_value());

  // One tick = one quantum: a 16-page victim cannot finish in 2 pages,
  // so the partially collected state must be visible in between.
  bool did_work = false;
  ASSERT_EQ(rig.gc.background_tick(&did_work), Status::kOk);
  EXPECT_TRUE(did_work);
  EXPECT_TRUE(rig.gc.background_in_progress());
  EXPECT_EQ(rig.gc.stats().blocks_reclaimed, 0u);
  rig.check_invariants(/*quiescent=*/false);  // mid-victim: relaxed

  int ticks = 1;
  while (rig.gc.background_in_progress() && ticks < 64) {
    ASSERT_EQ(rig.gc.background_tick(&did_work), Status::kOk);
    ++ticks;
  }
  EXPECT_FALSE(rig.gc.background_in_progress());
  EXPECT_GE(rig.gc.stats().blocks_reclaimed, 1u);
  EXPECT_GE(rig.gc.stats().background_quanta, 8u);  // 16 pages / 2 per tick
  rig.check_invariants(/*quiescent=*/true);
}

TEST(GcBackground, ForegroundCollectFinishesInFlightVictim) {
  GcTuning t{GcPolicy::kCostBenefit, /*background_free_blocks=*/64,
             /*quantum_pages=*/2};
  Rig rig(t, /*cold_separation=*/true);
  const std::string value(600, 'f');
  for (int round = 0; round < 40; ++round) {
    for (std::uint64_t sig = 1; sig <= 20; ++sig) rig.put(sig, value);
  }
  bool did_work = false;
  ASSERT_EQ(rig.gc.background_tick(&did_work), Status::kOk);
  ASSERT_TRUE(rig.gc.background_in_progress());

  // Foreground pressure arrives: collect_one() must finish the victim
  // already in flight (without re-scanning its processed pages) rather
  // than opening a second victim.
  const std::uint64_t reclaimed_before = rig.gc.stats().blocks_reclaimed;
  ASSERT_EQ(rig.gc.collect_one(), Status::kOk);
  EXPECT_FALSE(rig.gc.background_in_progress());
  EXPECT_EQ(rig.gc.stats().blocks_reclaimed, reclaimed_before + 1);
  rig.check_invariants(/*quiescent=*/true);
}

TEST(GcBackground, SkipsNearlyFullyLiveVictims) {
  // Background reclaim of a ~fully live block would churn relocation
  // writes forever on a genuinely full device; such victims are left to
  // foreground pressure (which reports kDeviceFull on no progress).
  GcTuning t{GcPolicy::kCostBenefit, /*background_free_blocks=*/64,
             /*quantum_pages=*/4};
  Rig rig(t);
  // 989-byte values with fixed 4-char keys pack exactly four pairs per
  // 4 KiB page (4094 of 4096 bytes used, epoch-stamped headers
  // included), so sealed blocks sit above the collector's 90%
  // utilization cutoff.
  const std::string value(989, 'L');
  std::uint64_t sig = 100;
  while (!rig.alloc.pick_victim(t.policy).has_value()) rig.put(sig++, value);
  // Everything stays live: the only victims are ~100% utilized.
  bool did_work = true;
  ASSERT_EQ(rig.gc.background_tick(&did_work), Status::kOk);
  EXPECT_FALSE(did_work);
  EXPECT_FALSE(rig.gc.background_in_progress());
  EXPECT_EQ(rig.gc.stats().blocks_reclaimed, 0u);
}

// The invariant-checker satellite: seeded churn with interleaved
// background quanta and foreground collects, invariants checked
// periodically and exactly at quiescent points — for BOTH policies and
// both buffer layouts.
class GcInvariantChurn
    : public ::testing::TestWithParam<std::pair<GcPolicy, bool>> {};

TEST_P(GcInvariantChurn, HoldUnderChurn) {
  const auto [policy, cold_separation] = GetParam();
  // A high free-block target on the 4 MiB device makes background GC
  // engage early in the churn instead of only near exhaustion.
  GcTuning t{policy, /*background_free_blocks=*/48, /*quantum_pages=*/4};
  Rig rig(t, cold_separation);
  const std::uint64_t seed = rhik::test::harness_seed(0x6C0DE);
  Rng rng(seed);
  const int key_space = 120;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t sig = 1 + rng.next_below(key_space);
    const std::string value(rng.next_range(60, 1100),
                            static_cast<char>('a' + sig % 26));
    rig.put(sig, value);
    ASSERT_EQ(rig.gc.background_tick(), Status::kOk)
        << "step " << step << " (seed 0x" << std::hex << seed << ")";
    if (rig.alloc.needs_gc()) {
      ASSERT_EQ(rig.gc.collect(4), Status::kOk)
          << "step " << step << " (seed 0x" << std::hex << seed << ")";
    }
    if (step % 500 == 499) {
      rig.check_invariants(/*quiescent=*/false);
    }
  }
  // Drain the in-flight victim so liveness accounting is exact, then run
  // the full checker including live-byte conservation.
  if (rig.gc.background_in_progress()) {
    ASSERT_EQ(rig.gc.collect_one(), Status::kOk);
  }
  ASSERT_EQ(rig.store.flush(), Status::kOk);
  rig.check_invariants(/*quiescent=*/true);
  EXPECT_GT(rig.gc.stats().blocks_reclaimed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, GcInvariantChurn,
    ::testing::Values(std::make_pair(GcPolicy::kGreedy, false),
                      std::make_pair(GcPolicy::kGreedy, true),
                      std::make_pair(GcPolicy::kCostBenefit, false),
                      std::make_pair(GcPolicy::kCostBenefit, true)),
    [](const auto& info) {
      return std::string(info.param.first == GcPolicy::kGreedy ? "Greedy"
                                                               : "CostBenefit") +
             (info.param.second ? "HotCold" : "Mixed");
    });

/// Runs the skewed workload on a rig and returns the final erase spread
/// (max/mean over the log region): write-once cold data pins ~70% of
/// the blocks (their erase counts freeze), then a small hot set churns
/// the remainder continuously.
double skew_workload_spread(Rig& rig, std::uint64_t seed) {
  Rng rng(seed);
  const std::string cold_value(900, 'c');
  std::uint64_t sig = 1000;
  while (rig.alloc.free_blocks() > 20) rig.put(sig++, cold_value);
  for (int step = 0; step < 25000; ++step) {
    const std::uint64_t hot = 1 + rng.next_below(12);
    const std::string value(rng.next_range(100, 400),
                            static_cast<char>('a' + hot % 26));
    rig.put(hot, value);
    (void)rig.gc.background_tick();
    if (rig.alloc.needs_gc()) {
      EXPECT_EQ(rig.gc.collect(4), Status::kOk) << "step " << step;
    }
  }
  return erase_spread(rig.nand, rig.alloc.first_reserved_block());
}

TEST(GcWearLeveling, SkewedWorkloadStaysUnderSpreadBound) {
  const std::uint64_t seed = rhik::test::harness_seed(0x5EAD);
  const double kBound = 2.0;

  // Wear pass OFF: cold blocks freeze their erase counts while the hot
  // set cycles the same few blocks — the spread runs away past the
  // bound. This arm proves the assertion below actually bites.
  GcTuning off{GcPolicy::kCostBenefit, /*background_free_blocks=*/8,
               /*quantum_pages=*/4, /*wear_leveling_threshold=*/0.0};
  Rig rig_off(off, /*cold_separation=*/true, /*wear_aware=*/false);
  const double spread_off = skew_workload_spread(rig_off, seed);

  // Wear pass ON (threshold 1.5, checked every 8 quanta) + wear-aware
  // open-block selection: cold blocks get migrated and their low-wear
  // cells rejoin the pool, keeping max/mean bounded.
  GcTuning on{GcPolicy::kCostBenefit, /*background_free_blocks=*/8,
              /*quantum_pages=*/4, /*wear_leveling_threshold=*/1.5,
              /*wear_check_quanta=*/8};
  Rig rig_on(on, /*cold_separation=*/true, /*wear_aware=*/true);
  const double spread_on = skew_workload_spread(rig_on, seed);

  EXPECT_GT(rig_on.gc.stats().wear_migrations, 0u)
      << "(seed 0x" << std::hex << seed << ")";
  EXPECT_LE(spread_on, kBound)
      << "spread_off=" << spread_off << " (seed 0x" << std::hex << seed << ")";
  EXPECT_GT(spread_off, kBound)
      << "wear-off control no longer exceeds the bound; tighten it "
      << "(seed 0x" << std::hex << seed << ")";
  EXPECT_LT(spread_on, spread_off)
      << "(seed 0x" << std::hex << seed << ")";
  rig_on.check_invariants(/*quiescent=*/false);
}

}  // namespace
}  // namespace rhik::ftl
