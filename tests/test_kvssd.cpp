// Integration tests for the emulated KVSSD device: the five-command set,
// key verification, GC under churn, async submission, capacity limits.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "hash/murmur.hpp"
#include "kvssd/device.hpp"
#include "kvssd/pm983_model.hpp"

namespace rhik::kvssd {
namespace {

DeviceConfig small_config(IndexKind kind = IndexKind::kRhik) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(128);  // 8 MiB device
  cfg.dram_cache_bytes = 64 * 1024;
  cfg.index_kind = kind;
  if (kind == IndexKind::kMlHash) {
    cfg.mlhash = index::MlHashConfig::for_keys(20000, cfg.geometry.page_size);
  }
  return cfg;
}

ByteSpan key(const std::string& s) { return as_bytes(s); }

TEST(Kvssd, PutGetDeleteRoundTrip) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("hello"), key("world")), Status::kOk);
  Bytes value;
  ASSERT_EQ(dev.get(key("hello"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "world");
  EXPECT_EQ(dev.key_count(), 1u);

  ASSERT_EQ(dev.del(key("hello")), Status::kOk);
  EXPECT_EQ(dev.get(key("hello"), &value), Status::kNotFound);
  EXPECT_EQ(dev.key_count(), 0u);
}

TEST(Kvssd, GetMissingIsNotFound) {
  KvssdDevice dev(small_config());
  Bytes value;
  EXPECT_EQ(dev.get(key("nope"), &value), Status::kNotFound);
  EXPECT_EQ(dev.del(key("nope")), Status::kNotFound);
  EXPECT_EQ(dev.stats().not_found, 2u);
}

TEST(Kvssd, UpdateReplacesValueAndReclaimsAccounting) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("k"), key("version-1")), Status::kOk);
  const std::uint64_t live1 = dev.live_bytes();
  ASSERT_EQ(dev.put(key("k"), key("v2")), Status::kOk);
  Bytes value;
  ASSERT_EQ(dev.get(key("k"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "v2");
  EXPECT_EQ(dev.key_count(), 1u);
  EXPECT_LT(dev.live_bytes(), live1);  // shorter value, old version stale
}

TEST(Kvssd, ExistIsIndexOnly) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("present"), key("v")), Status::kOk);
  const auto data_reads = dev.store().stats().pairs_read;
  EXPECT_EQ(dev.exist(key("present")), Status::kOk);
  EXPECT_EQ(dev.exist(key("absent")), Status::kNotFound);
  // Membership checking never read KV pairs from flash (§IV-A3).
  EXPECT_EQ(dev.store().stats().pairs_read, data_reads);
}

TEST(Kvssd, InvalidArgumentsRejected) {
  KvssdDevice dev(small_config());
  Bytes value;
  EXPECT_EQ(dev.put(key(""), key("v")), Status::kInvalidArgument);
  const std::string long_key(300, 'k');  // > 255 B SNIA cap
  EXPECT_EQ(dev.put(key(long_key), key("v")), Status::kInvalidArgument);
  EXPECT_EQ(dev.get(key(""), &value), Status::kInvalidArgument);
  const std::string huge_value(dev.store().max_value_size(1) + 1, 'v');
  EXPECT_EQ(dev.put(key("k"), key(huge_value)), Status::kInvalidArgument);
}

TEST(Kvssd, LargeValuesUpToBlockExtent) {
  DeviceConfig cfg = small_config();
  KvssdDevice dev(cfg);
  // Multi-page extent (tiny geometry: 4 KiB pages, 16 per block).
  const std::string big(30000, 'B');
  ASSERT_EQ(dev.put(key("big"), key(big)), Status::kOk);
  Bytes value;
  ASSERT_EQ(dev.get(key("big"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), big);
}

TEST(Kvssd, SignatureOfKeyIsMurmur64ByDefault) {
  KvssdDevice dev(small_config());
  EXPECT_EQ(dev.signature(key("abc")), hash::murmur2_64(key("abc")));
}

TEST(Kvssd, WideSignatureModeWorksEndToEnd) {
  DeviceConfig cfg = small_config();
  cfg.wide_signatures = true;  // §IV-A3: 128-bit signature generation
  KvssdDevice dev(cfg);
  EXPECT_EQ(dev.signature(key("abc")), hash::murmur3_128(key("abc")).lo);
  ASSERT_EQ(dev.put(key("wide"), key("sig")), Status::kOk);
  Bytes value;
  ASSERT_EQ(dev.get(key("wide"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "sig");
  EXPECT_EQ(dev.del(key("wide")), Status::kOk);
}

TEST(Kvssd, FillsManyKeysAcrossResizes) {
  DeviceConfig cfg = small_config();
  cfg.dram_cache_bytes = 16 * 4096;
  KvssdDevice dev(cfg);
  std::unordered_map<std::string, std::string> ref;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const std::string k = "key-" + std::to_string(i);
    const std::string v(rng.next_range(8, 64), static_cast<char>('a' + i % 26));
    const Status s = dev.put(key(k), key(v));
    if (s == Status::kDeviceFull) break;
    ASSERT_EQ(s, Status::kOk) << i;
    ref[k] = v;
  }
  EXPECT_GT(dev.index().op_stats().resizes, 0u);  // grew past initial size
  EXPECT_EQ(dev.key_count(), ref.size());
  for (const auto& [k, v] : ref) {
    Bytes value;
    ASSERT_EQ(dev.get(key(k), &value), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(value), v);
  }
}

TEST(Kvssd, QuiescentDeviceDrainsMigrationInBackground) {
  DeviceConfig cfg = small_config();
  cfg.rhik.incremental_resize = true;
  cfg.rhik.incremental_batch = 1;  // one bucket per quantum: many pumps
  KvssdDevice dev(cfg);
  // Fill until a doubling opens a migration window.
  int stored = 0;
  while (!dev.index().maintenance_active()) {
    const std::string k = "key-" + std::to_string(stored++);
    ASSERT_EQ(dev.put(key(k), key("v")), Status::kOk);
  }
  // No further foreground traffic: the idle pump alone must drain the
  // migration in bounded quanta — the device never wedges half-doubled.
  int pumps = 0;
  while (dev.pump_background() && pumps < 100000) ++pumps;
  EXPECT_FALSE(dev.index().maintenance_active());
  EXPECT_GT(pumps, 0);
  // Everything stored before and during the window still resolves.
  for (int i = 0; i < stored; ++i) {
    Bytes value;
    ASSERT_EQ(dev.get(key("key-" + std::to_string(i)), &value), Status::kOk);
  }
}

TEST(Kvssd, GcReclaimsChurnedSpace) {
  DeviceConfig cfg = small_config();
  KvssdDevice dev(cfg);
  Rng rng(9);
  // Overwrite a small working set far past device capacity: without GC
  // this is ~3x the raw flash.
  const std::string v(2000, 'x');
  for (int i = 0; i < 12000; ++i) {
    const std::string k = "churn-" + std::to_string(rng.next_below(100));
    ASSERT_EQ(dev.put(key(k), key(v)), Status::kOk) << i;
  }
  EXPECT_GT(dev.gc().stats().blocks_reclaimed, 0u);
  // Reclamation now normally rides the incremental background quanta;
  // foreground invocations only happen under free-block pressure.
  EXPECT_GT(dev.stats().gc_invocations + dev.gc().stats().background_quanta, 0u);
  // Working set still fully readable.
  for (int i = 0; i < 100; ++i) {
    Bytes value;
    const std::string k = "churn-" + std::to_string(i);
    if (dev.get(key(k), &value) == Status::kOk) {
      EXPECT_EQ(value.size(), v.size());
    }
  }
}

TEST(Kvssd, DeviceFullSurfacesWhenNoReclaimableSpace) {
  DeviceConfig cfg;
  cfg.geometry = flash::Geometry::tiny(16);  // 1 MiB device
  KvssdDevice dev(cfg);
  Status last = Status::kOk;
  int stored = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::string k = "fill-" + std::to_string(i);
    last = dev.put(key(k), key(std::string(900, 'f')));
    if (!ok(last)) break;
    ++stored;
  }
  EXPECT_EQ(last, Status::kDeviceFull);
  EXPECT_GT(stored, 0);
  // Already-stored data is unaffected.
  Bytes value;
  EXPECT_EQ(dev.get(key("fill-0"), &value), Status::kOk);
  // Deleting makes room again.
  for (int i = 0; i < stored / 2; ++i) {
    ASSERT_EQ(dev.del(key("fill-" + std::to_string(i))), Status::kOk);
  }
  EXPECT_EQ(dev.put(key("again"), key("fits-now")), Status::kOk);
}

TEST(Kvssd, AsyncDrainsAndPipelinesOverhead) {
  DeviceConfig cfg = small_config();
  cfg.cmd_overhead_ns = 10 * kMicrosecond;
  cfg.queue_depth = 32;

  // Sync run.
  KvssdDevice sync_dev(cfg);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(sync_dev.put(key("k" + std::to_string(i)), key("v")), Status::kOk);
  }
  const SimTime sync_time = sync_dev.clock().now();

  // Async run of the same workload.
  const auto owned = [](const std::string& s) { return Bytes(s.begin(), s.end()); };
  KvssdDevice async_dev(cfg);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    async_dev.submit_put(owned("k" + std::to_string(i)), owned("v"),
                         [&](Status s) {
                           EXPECT_EQ(s, Status::kOk);
                           ++completed;
                         });
  }
  EXPECT_EQ(async_dev.drain(), 200u);
  EXPECT_EQ(completed, 200);
  // Async amortizes the fixed command overhead across the queue depth.
  EXPECT_LT(async_dev.clock().now(), sync_time);

  Bytes value;
  EXPECT_EQ(async_dev.get(key("k199"), &value), Status::kOk);
}

TEST(Kvssd, AsyncDeleteCompletesThroughQueue) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("gone-soon"), key("v")), Status::kOk);
  Status del_status = Status::kBusy;
  dev.submit_del(Bytes{'g', 'o', 'n', 'e', '-', 's', 'o', 'o', 'n'},
                 [&](Status s) { del_status = s; });
  EXPECT_EQ(dev.drain(), 1u);
  EXPECT_EQ(del_status, Status::kOk);
  Bytes value;
  EXPECT_EQ(dev.get(key("gone-soon"), &value), Status::kNotFound);
}

TEST(Kvssd, DrainOnEmptyQueueIsNoop) {
  KvssdDevice dev(small_config());
  EXPECT_EQ(dev.drain(), 0u);
  const SimTime t = dev.clock().now();
  EXPECT_EQ(dev.drain(), 0u);
  EXPECT_EQ(dev.clock().now(), t);
}

TEST(Kvssd, IteratePrefixRequiresConfig) {
  KvssdDevice dev(small_config());
  std::vector<Bytes> keys;
  EXPECT_EQ(dev.iterate_prefix(key("user"), &keys), Status::kUnsupported);
}

TEST(Kvssd, IteratePrefixEnumeratesExactMatches) {
  DeviceConfig cfg = small_config();
  cfg.prefix_signatures = true;  // §VI iterator extension
  KvssdDevice dev(cfg);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(dev.put(key("user:" + std::to_string(i)), key("u")), Status::kOk);
    ASSERT_EQ(dev.put(key("acct:" + std::to_string(i)), key("a")), Status::kOk);
  }
  std::vector<Bytes> keys;
  ASSERT_EQ(dev.iterate_prefix(key("user"), &keys), Status::kOk);
  EXPECT_EQ(keys.size(), 20u);
  for (const auto& k : keys) {
    EXPECT_EQ(rhik::to_string(ByteSpan{k}.subspan(0, 5)), "user:");
  }
  // Limit is honoured.
  ASSERT_EQ(dev.iterate_prefix(key("acct"), &keys, 5), Status::kOk);
  EXPECT_EQ(keys.size(), 5u);
}

TEST(Kvssd, MlHashBackendWorksEndToEnd) {
  KvssdDevice dev(small_config(IndexKind::kMlHash));
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(dev.put(key("mk" + std::to_string(i)), key("value")), Status::kOk);
  }
  Bytes value;
  ASSERT_EQ(dev.get(key("mk42"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "value");
  ASSERT_EQ(dev.del(key("mk42")), Status::kOk);
  EXPECT_EQ(dev.get(key("mk42"), &value), Status::kNotFound);
}

TEST(Kvssd, FlushPersistsOpenBuffers) {
  KvssdDevice dev(small_config());
  ASSERT_EQ(dev.put(key("durable"), key("bits")), Status::kOk);
  ASSERT_EQ(dev.flush(), Status::kOk);
  EXPECT_FALSE(dev.store().open_page().has_value());
  Bytes value;
  ASSERT_EQ(dev.get(key("durable"), &value), Status::kOk);
  EXPECT_EQ(rhik::to_string(value), "bits");
}

TEST(Kvssd, LatencyHistogramsPopulate) {
  KvssdDevice dev(small_config());
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(dev.put(key("h" + std::to_string(i)), key("v")), Status::kOk);
  }
  Bytes value;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(dev.get(key("h" + std::to_string(i)), &value), Status::kOk);
  }
  EXPECT_EQ(dev.stats().put_latency_ns.count(), 50u);
  EXPECT_EQ(dev.stats().get_latency_ns.count(), 50u);
  EXPECT_GT(dev.stats().get_latency_ns.mean(), 0.0);
}

TEST(Pm983Model, ShapesMatchThePaper) {
  const Pm983Model model;
  // Async large-value throughput approaches the bandwidth cap.
  EXPECT_NEAR(model.throughput_mib(OpDir::kWrite, true, 2 << 20),
              model.write_bw_mib, model.write_bw_mib * 0.05);
  // Small-value throughput is IOPS-bound, far below the bandwidth cap.
  EXPECT_LT(model.throughput_mib(OpDir::kWrite, true, 4096),
            model.write_bw_mib / 2);
  // Reads outpace writes; async outpaces sync at small sizes.
  EXPECT_GT(model.throughput_ops(OpDir::kRead, true, 4096),
            model.throughput_ops(OpDir::kWrite, true, 4096));
  EXPECT_GT(model.throughput_ops(OpDir::kWrite, true, 4096),
            model.throughput_ops(OpDir::kWrite, false, 4096));
}

}  // namespace
}  // namespace rhik::kvssd
