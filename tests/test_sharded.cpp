// ShardedKvssd front-end: routing, sync/async verbs, cross-shard
// drain/flush barriers, batch partitioning, stats aggregation and
// single-shard parity with a raw device.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_kvssd.hpp"
#include "workload/keygen.hpp"

namespace rhik::shard {
namespace {

using kvssd::KvssdDevice;

ShardedConfig make_config(std::uint32_t shards) {
  ShardedConfig sc;
  sc.device.geometry = flash::Geometry::tiny(128);  // 8 MiB per shard
  sc.device.dram_cache_bytes = 64 * 1024;
  sc.num_shards = shards;
  sc.ring_capacity = 256;
  return sc;
}

ByteSpan key(const std::string& s) { return as_bytes(s); }
Bytes owned(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Sharded, SyncRoundTripAcrossShards) {
  ShardedKvssd arr(make_config(4));
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    const std::string k = "key-" + std::to_string(i);
    ASSERT_EQ(arr.put(key(k), key("value-" + std::to_string(i))), Status::kOk);
  }
  for (int i = 0; i < kKeys; ++i) {
    const std::string k = "key-" + std::to_string(i);
    Bytes v;
    ASSERT_EQ(arr.get(key(k), &v), Status::kOk) << k;
    EXPECT_EQ(rhik::to_string(v), "value-" + std::to_string(i));
    EXPECT_EQ(arr.exist(key(k)), Status::kOk);
  }
  EXPECT_EQ(arr.key_count(), static_cast<std::uint64_t>(kKeys));

  for (int i = 0; i < kKeys; i += 2) {
    ASSERT_EQ(arr.del(key("key-" + std::to_string(i))), Status::kOk);
  }
  EXPECT_EQ(arr.key_count(), static_cast<std::uint64_t>(kKeys / 2));
  Bytes v;
  EXPECT_EQ(arr.get(key("key-0"), &v), Status::kNotFound);
  EXPECT_EQ(arr.get(key("key-1"), &v), Status::kOk);
}

TEST(Sharded, KeysSpreadAcrossAllShards) {
  ShardedKvssd arr(make_config(4));
  constexpr int kKeys = 400;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(arr.put(workload::key_for_id(i, 16), key("v")), Status::kOk);
  }
  arr.drain();
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < arr.num_shards(); ++s) {
    const std::uint64_t n = arr.shard_device(s).key_count();
    EXPECT_GT(n, 0u) << "shard " << s << " got no keys";
    total += n;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kKeys));

  // Routing is deterministic and consistent with the stored placement.
  for (int i = 0; i < kKeys; ++i) {
    const Bytes k = workload::key_for_id(i, 16);
    Bytes v;
    EXPECT_EQ(arr.shard_device(arr.shard_of(k)).get(k, &v), Status::kOk);
  }
}

TEST(Sharded, AsyncCallbacksAndDrainBarrier) {
  ShardedKvssd arr(make_config(4));
  constexpr int kOps = 300;
  std::atomic<int> acks{0};
  for (int i = 0; i < kOps; ++i) {
    arr.submit_put(workload::key_for_id(i, 16), owned("v"),
                   [&](Status s) {
                     EXPECT_EQ(s, Status::kOk);
                     acks.fetch_add(1, std::memory_order_relaxed);
                   });
  }
  arr.drain();
  EXPECT_EQ(acks.load(), kOps);
  EXPECT_EQ(arr.key_count(), static_cast<std::uint64_t>(kOps));
  // Everything already completed: a second barrier completes nothing.
  EXPECT_EQ(arr.drain(), 0u);

  std::atomic<int> get_acks{0};
  for (int i = 0; i < kOps; ++i) {
    arr.submit_get(workload::key_for_id(i, 16), [&](Status s, Bytes&& v) {
      EXPECT_EQ(s, Status::kOk);
      EXPECT_EQ(rhik::to_string(v), "v");
      get_acks.fetch_add(1, std::memory_order_relaxed);
    });
  }
  arr.drain();
  EXPECT_EQ(get_acks.load(), kOps);
}

TEST(Sharded, FlushBarrierCoversAllShards) {
  ShardedKvssd arr(make_config(3));
  constexpr int kOps = 150;
  for (int i = 0; i < kOps; ++i) {
    arr.submit_put(workload::key_for_id(i, 16), owned("v"));
  }
  ASSERT_EQ(arr.flush(), Status::kOk);
  // flush() implies the drain barrier: every queued put completed on its
  // shard before the flush, so everything reads back immediately...
  EXPECT_EQ(arr.stats().puts, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(arr.key_count(), static_cast<std::uint64_t>(kOps));
  Bytes v;
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(arr.get(workload::key_for_id(i, 16), &v), Status::kOk) << i;
  }
  // ...and every shard persisted index state (directory checkpoint +
  // dirty record pages hit flash during the flush).
  arr.drain();
  for (std::uint32_t s = 0; s < arr.num_shards(); ++s) {
    EXPECT_GT(arr.shard_device(s).index().op_stats().flash_writes, 0u)
        << "shard " << s;
  }
}

TEST(Sharded, StatsAggregationMergesCountersAndHistograms) {
  ShardedKvssd arr(make_config(4));
  constexpr int kPuts = 120;
  constexpr int kGets = 80;
  for (int i = 0; i < kPuts; ++i) {
    ASSERT_EQ(arr.put(workload::key_for_id(i, 16), key("value")), Status::kOk);
  }
  Bytes v;
  for (int i = 0; i < kGets; ++i) {
    ASSERT_EQ(arr.get(workload::key_for_id(i, 16), &v), Status::kOk);
  }
  EXPECT_EQ(arr.get(key("absent"), &v), Status::kNotFound);

  const kvssd::DeviceStats agg = arr.stats();
  EXPECT_EQ(agg.puts, static_cast<std::uint64_t>(kPuts));
  EXPECT_EQ(agg.gets, static_cast<std::uint64_t>(kGets));
  EXPECT_EQ(agg.not_found, 1u);
  // Histograms merge: one latency sample per put/get across the array.
  EXPECT_EQ(agg.put_latency_ns.count(), static_cast<std::uint64_t>(kPuts));
  EXPECT_EQ(agg.get_latency_ns.count(), static_cast<std::uint64_t>(kGets + 1));

  // Array time is the max across shard clocks (shards run concurrently).
  arr.drain();
  SimTime max_clock = 0;
  for (std::uint32_t s = 0; s < arr.num_shards(); ++s) {
    max_clock = std::max(max_clock, arr.shard_device(s).clock().now());
  }
  EXPECT_EQ(arr.sim_time(), max_clock);
}

TEST(Sharded, MetricsSnapshotEqualsMergeOfPerShardSnapshots) {
  ShardedKvssd arr(make_config(4));
  constexpr int kPuts = 150;
  constexpr int kGets = 100;
  for (int i = 0; i < kPuts; ++i) {
    ASSERT_EQ(arr.put(workload::key_for_id(i, 16), key("value")), Status::kOk);
  }
  Bytes v;
  for (int i = 0; i < kGets; ++i) {
    ASSERT_EQ(arr.get(workload::key_for_id(i, 16), &v), Status::kOk);
  }
  arr.drain();  // quiesce: both barriers below must see identical state

  const obs::MetricsSnapshot merged = arr.metrics_snapshot();
  obs::MetricsSnapshot manual;
  const auto per_shard = arr.shard_metrics_snapshots();
  ASSERT_EQ(per_shard.size(), 4u);
  for (const obs::MetricsSnapshot& s : per_shard) manual.merge_from(s);

  // The merged view is exactly the merge of the per-shard snapshots plus
  // the front-end's own frontend.* overlay — nothing dropped, nothing
  // double-counted.
  EXPECT_EQ(merged.captured_at_ns, manual.captured_at_ns);
  for (const auto& [name, value] : manual.counters) {
    EXPECT_EQ(merged.counter(name), value) << name;
  }
  for (const auto& [name, gv] : manual.gauges) {
    EXPECT_EQ(merged.gauge(name), gv.value) << name;
  }
  for (const auto& [name, h] : manual.timers) {
    const Histogram* mh = merged.timer(name);
    ASSERT_NE(mh, nullptr) << name;
    EXPECT_EQ(mh->count(), h.count()) << name;
    EXPECT_EQ(mh->max(), h.max()) << name;
    EXPECT_DOUBLE_EQ(mh->percentile(99), h.percentile(99)) << name;
  }
  // Everything the merged view adds on top is front-end-scoped.
  for (const auto& [name, value] : merged.counters) {
    if (manual.counters.count(name) == 0) {
      EXPECT_EQ(name.rfind("frontend.", 0), 0u) << name;
      (void)value;
    }
  }

  // Whole-array totals line up with the workload and the front-end's own
  // accounting (sync verbs counted once each).
  EXPECT_EQ(merged.counter("device.puts"), static_cast<std::uint64_t>(kPuts));
  EXPECT_EQ(merged.counter("device.gets"), static_cast<std::uint64_t>(kGets));
  EXPECT_EQ(merged.counter("frontend.puts"), static_cast<std::uint64_t>(kPuts));
  EXPECT_EQ(merged.counter("frontend.gets"), static_cast<std::uint64_t>(kGets));
  EXPECT_EQ(merged.gauge("frontend.shards"), 4);
  EXPECT_EQ(merged.timer("op.put.total_ns")->count(),
            static_cast<std::uint64_t>(kPuts));
  EXPECT_EQ(merged.timer("op.get.total_ns")->count(),
            static_cast<std::uint64_t>(kGets));

  // Acceptance: the JSON export of a sharded run carries per-stage
  // percentiles and flash reads per op for get and put.
  const std::string json = merged.to_json();
  for (const char* name :
       {"op.get.total_ns", "op.get.index_ns", "op.get.flash_ns",
        "op.get.flash_reads", "op.put.total_ns", "op.put.flash_reads"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  auto parsed = obs::MetricsSnapshot::from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->counter("device.puts"), merged.counter("device.puts"));
}

TEST(Sharded, MetricsStableUnderConcurrentDrains) {
  ShardedKvssd arr(make_config(4));
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;

  // Producers submit while other threads hammer drain() and
  // metrics_snapshot() barriers concurrently: the metrics path must not
  // drop or double-count ops.
  std::atomic<bool> stop{false};
  std::vector<std::thread> drainers;
  drainers.reserve(2);
  for (int d = 0; d < 2; ++d) {
    drainers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        arr.drain();
        (void)arr.metrics_snapshot();
      }
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        arr.submit_put(workload::key_for_id(p * kPerProducer + i, 16),
                       owned("value"));
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : drainers) t.join();
  arr.drain();

  const obs::MetricsSnapshot snap = arr.metrics_snapshot();
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(snap.counter("device.puts"), kTotal);
  EXPECT_EQ(snap.counter("frontend.puts"), kTotal);
  EXPECT_EQ(snap.timer("op.put.total_ns")->count(), kTotal);
  EXPECT_EQ(arr.key_count(), kTotal);
}

TEST(Sharded, ExecuteBatchPartitionsAndWritesBack) {
  ShardedKvssd arr(make_config(4));
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(arr.put(workload::key_for_id(i, 16), key("old")), Status::kOk);
  }

  std::vector<ShardedKvssd::BatchOp> ops;
  for (int i = 0; i < 50; ++i) {  // gets of present keys
    ShardedKvssd::BatchOp op;
    op.kind = ShardedKvssd::BatchOp::Kind::kGet;
    op.key = workload::key_for_id(i, 16);
    ops.push_back(std::move(op));
  }
  {  // delete one, probe one absent, update one
    ShardedKvssd::BatchOp op;
    op.kind = ShardedKvssd::BatchOp::Kind::kDel;
    op.key = workload::key_for_id(7, 16);
    ops.push_back(std::move(op));
    op = {};
    op.kind = ShardedKvssd::BatchOp::Kind::kExist;
    op.key = owned("absent-key");
    ops.push_back(std::move(op));
    op = {};
    op.kind = ShardedKvssd::BatchOp::Kind::kPut;
    op.key = workload::key_for_id(3, 16);
    op.value = owned("new");
    ops.push_back(std::move(op));
  }

  ASSERT_EQ(arr.execute_batch(ops), Status::kOk);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ops[i].status, Status::kOk) << i;
    EXPECT_EQ(rhik::to_string(ops[i].value), "old") << i;
  }
  EXPECT_EQ(ops[50].status, Status::kOk);      // del
  EXPECT_EQ(ops[51].status, Status::kNotFound);  // exist(absent)
  EXPECT_EQ(ops[52].status, Status::kOk);      // update

  Bytes v;
  EXPECT_EQ(arr.get(workload::key_for_id(7, 16), &v), Status::kNotFound);
  EXPECT_EQ(arr.get(workload::key_for_id(3, 16), &v), Status::kOk);
  EXPECT_EQ(rhik::to_string(v), "new");
  // One compound command was charged per shard touched, at most.
  EXPECT_LE(arr.stats().batches, arr.num_shards());
}

TEST(Sharded, SingleShardMatchesRawDevice) {
  const auto cfg = make_config(1);
  ShardedKvssd arr(cfg);
  KvssdDevice raw(cfg.device);

  workload::KeyIdStream ids(workload::KeyPattern::kUniform, 60, /*seed=*/5);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t id = ids.next();
    const Bytes k = workload::key_for_id(id, 16);
    if (i % 3 == 0) {
      Bytes va, vb;
      EXPECT_EQ(arr.get(k, &va), raw.get(k, &vb));
      EXPECT_EQ(va, vb);
    } else if (i % 7 == 0) {
      EXPECT_EQ(arr.del(k), raw.del(k));
    } else {
      Bytes v(40);
      workload::fill_value(id, v);
      EXPECT_EQ(arr.put(k, v), raw.put(k, v));
    }
  }
  EXPECT_EQ(arr.key_count(), raw.key_count());
}

TEST(Sharded, SingleShardRoutesEverythingToShardZero) {
  ShardedKvssd arr(make_config(1));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(arr.shard_of(workload::key_for_id(i, 16)), 0u);
  }
}

}  // namespace
}  // namespace rhik::shard
