// Crash-recovery walkthrough: fill a device, simulate power loss at an
// arbitrary point (no flush), and rebuild the index from the flash log —
// tombstones keep deletions durable, the unflushed write buffer is lost,
// exactly as on real hardware.
//
//   $ ./crash_recovery
#include <cstdio>
#include <string>

#include "kvssd/device.hpp"
#include "workload/keygen.hpp"

int main() {
  using namespace rhik;

  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(512ull << 20);
  auto dev = std::make_unique<kvssd::KvssdDevice>(cfg);

  // A mixed history: inserts, updates, deletions.
  const std::uint64_t n = 5000;
  Bytes value(256);
  for (std::uint64_t id = 0; id < n; ++id) {
    workload::fill_value(id, value);
    dev->put(workload::key_for_id(id, 16), value);
  }
  for (std::uint64_t id = 0; id < n; id += 3) {
    dev->del(workload::key_for_id(id, 16));
  }
  std::printf("before crash: %llu keys, %llu tombstones written\n",
              static_cast<unsigned long long>(dev->key_count()),
              static_cast<unsigned long long>(dev->store().stats().tombstones_written));

  // Persist everything EXCEPT this last put, which stays in the RAM
  // write buffer and must vanish with the power.
  dev->flush();
  dev->put(as_bytes(std::string("doomed-key")), as_bytes(std::string("ram-only")));

  // --- power loss ---------------------------------------------------------
  auto nand = dev->release_nand();
  dev.reset();

  auto recovered = kvssd::KvssdDevice::recover(cfg, std::move(nand));
  if (!recovered) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 std::string(to_string(recovered.status())).c_str());
    return 1;
  }
  auto& dev2 = **recovered;
  std::printf("after recovery: %llu keys\n",
              static_cast<unsigned long long>(dev2.key_count()));

  // Spot checks.
  Bytes out;
  const Status surviving = dev2.get(workload::key_for_id(1, 16), &out);
  const Status deleted = dev2.get(workload::key_for_id(0, 16), &out);
  const Status doomed = dev2.get(as_bytes(std::string("doomed-key")), &out);
  std::printf("  surviving key: %s (value intact: %s)\n",
              std::string(to_string(surviving)).c_str(),
              ok(surviving) && workload::check_value(1, out) ? "yes" : "NO");
  std::printf("  deleted key:   %s (tombstone honoured)\n",
              std::string(to_string(deleted)).c_str());
  std::printf("  unflushed key: %s (write buffer lost, as expected)\n",
              std::string(to_string(doomed)).c_str());

  // The recovered device is fully operational.
  dev2.put(as_bytes(std::string("post-recovery")), as_bytes(std::string("works")));
  const Status post = dev2.get(as_bytes(std::string("post-recovery")), &out);
  std::printf("  post-recovery write+read: %s\n",
              std::string(to_string(post)).c_str());
  return ok(surviving) && deleted == Status::kNotFound &&
                 doomed == Status::kNotFound && ok(post)
             ? 0
             : 1;
}
