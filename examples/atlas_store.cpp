// Atlas-style object store (paper Table I, left column).
//
// Replays a Baidu-Atlas-like write distribution (94.1% of requests are
// 128-256 KB) against the emulated KVSSD and reports how RHIK's index
// re-configures itself as the store grows — the paper's core scenario of
// "conservative initialization, grow on demand" (§IV-A2).
//
//   $ ./atlas_store [num_objects]
#include <cstdio>
#include <cstdlib>

#include "kvssd/device.hpp"
#include "workload/keygen.hpp"
#include "workload/size_dist.hpp"

int main(int argc, char** argv) {
  using namespace rhik;

  const std::uint64_t num_objects =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(4ull << 30);  // 4 GiB
  cfg.rhik.anticipated_keys = 64;  // deliberately conservative (Eq. 2)
  kvssd::KvssdDevice dev(cfg);

  const auto sizes = workload::SizeDistribution::atlas_write();
  Rng rng(7);
  Bytes value;

  std::printf("Atlas-like store: %llu objects, mean request %.1f KiB\n",
              static_cast<unsigned long long>(num_objects),
              sizes.mean() / 1024.0);
  std::printf("%-10s %-12s %-12s %-10s %-12s\n", "objects", "dir-entries",
              "index-keys", "occupancy", "resizes");

  std::uint64_t stored = 0;
  for (std::uint64_t i = 0; i < num_objects; ++i) {
    const Bytes key = workload::key_for_id(i, 20);
    value.resize(sizes.sample(rng));
    workload::fill_value(i, value);
    const Status s = dev.put(key, value);
    if (s == Status::kDeviceFull) {
      std::printf("device full after %llu objects\n",
                  static_cast<unsigned long long>(stored));
      break;
    }
    if (!ok(s)) {
      std::fprintf(stderr, "put failed: %s\n", std::string(to_string(s)).c_str());
      return 1;
    }
    ++stored;
    if (stored % (num_objects / 10 ? num_objects / 10 : 1) == 0) {
      const auto& ix = dev.index();
      std::printf("%-10llu %-12llu %-12llu %-10.1f%% %-12llu\n",
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(ix.capacity() /
                                                  cfg.rhik.records_per_page(
                                                      cfg.geometry.page_size)),
                  static_cast<unsigned long long>(ix.size()),
                  ix.occupancy() * 100.0,
                  static_cast<unsigned long long>(ix.op_stats().resizes));
    }
  }

  // Read back a sample and verify.
  std::uint64_t verified = 0;
  for (std::uint64_t i = 0; i < stored; i += 17) {
    if (ok(dev.get(workload::key_for_id(i, 20), &value)) &&
        workload::check_value(i, value)) {
      ++verified;
    }
  }
  std::printf("\nverified %llu sampled objects intact\n",
              static_cast<unsigned long long>(verified));
  std::printf("simulated device time: %.2f s, GC reclaimed %llu blocks\n",
              static_cast<double>(dev.clock().now()) / 1e9,
              static_cast<unsigned long long>(dev.gc().stats().blocks_reclaimed));
  return 0;
}
