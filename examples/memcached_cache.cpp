// Memcached-ETC style cache workload (paper Table I, right column).
//
// Facebook's ETC pool is the paper's motivating example of a workload
// whose key count explodes past what a fixed multi-level index supports
// (24-744 billion keys on 4 TB). This example runs the ETC size mix with
// a zipfian read-mostly access pattern and exist-checks, comparing the
// same run on RHIK and on the multi-level-hash baseline.
//
//   $ ./memcached_cache [ops]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "kvssd/device.hpp"
#include "workload/keygen.hpp"
#include "workload/size_dist.hpp"

namespace {

struct RunResult {
  double ops_per_sec = 0;
  double index_reads_per_lookup_p99 = 0;
  std::uint64_t rejected = 0;
};

RunResult run(rhik::kvssd::IndexKind kind, std::uint64_t ops) {
  using namespace rhik;
  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(2ull << 30);
  cfg.dram_cache_bytes = 1ull << 20;  // scarce SSD DRAM
  // PM983-class page timings so index flash reads carry real weight.
  cfg.latency = flash::NandLatency{13 * kMicrosecond, 35 * kMicrosecond,
                                   1 * kMillisecond, 0};
  cfg.index_kind = kind;
  if (kind == kvssd::IndexKind::kMlHash) {
    // The baseline must be provisioned up front; size it for the hot set.
    cfg.mlhash = index::MlHashConfig::for_keys(300'000, cfg.geometry.page_size);
  }
  kvssd::KvssdDevice dev(cfg);

  const auto sizes = workload::SizeDistribution::fb_memcached_etc();
  const std::uint64_t hot_keys = 200'000;
  Rng rng(3);
  // Mild skew (not full 0.99 zipf): ETC's long tail is what pressures
  // the index cache and separates the two schemes.
  Zipfian zipf(hot_keys, 0.6);
  Bytes value;

  RunResult result;
  const SimTime t0 = dev.clock().now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t id = zipf.next(rng);
    const Bytes key = workload::key_for_id(id, 24);
    const double dice = rng.next_double();
    if (dice < 0.70) {  // ETC is read-dominated
      dev.get(key, &value);
    } else if (dice < 0.80) {
      dev.exist(key);
    } else {
      value.resize(std::min<std::uint64_t>(sizes.sample(rng), 64 * 1024));
      workload::fill_value(id, value);
      const Status s = dev.put(key, value);
      if (s == Status::kIndexFull || s == Status::kCollisionAbort) {
        result.rejected++;
      }
    }
  }
  result.ops_per_sec = ops_per_sec(ops, dev.clock().now() - t0);
  result.index_reads_per_lookup_p99 =
      dev.index().op_stats().reads_per_lookup.percentile(99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t ops =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

  std::printf("Memcached-ETC cache, %llu ops, zipfian(0.99) over 200k keys\n\n",
              static_cast<unsigned long long>(ops));
  std::printf("%-22s %-14s %-22s %-10s\n", "index", "ops/s(sim)",
              "idx-reads/lookup p99", "rejected");

  const RunResult rhik_run = run(rhik::kvssd::IndexKind::kRhik, ops);
  std::printf("%-22s %-14.0f %-22.2f %-10llu\n", "RHIK", rhik_run.ops_per_sec,
              rhik_run.index_reads_per_lookup_p99,
              static_cast<unsigned long long>(rhik_run.rejected));

  const RunResult ml_run = run(rhik::kvssd::IndexKind::kMlHash, ops);
  std::printf("%-22s %-14.0f %-22.2f %-10llu\n", "multi-level-hash",
              ml_run.ops_per_sec, ml_run.index_reads_per_lookup_p99,
              static_cast<unsigned long long>(ml_run.rejected));

  std::printf("\nRHIK speedup: %.2fx\n",
              rhik_run.ops_per_sec / (ml_run.ops_per_sec > 0 ? ml_run.ops_per_sec : 1));
  return 0;
}
