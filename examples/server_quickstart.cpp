// Serving-layer quickstart: start net::KvServer over a sharded device,
// connect two tenants with net::KvClient, and show namespaces, quota
// rejection (KVS_ERR_QUEUE_FULL) and pipelined out-of-order responses.
//
//   $ ./server_quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "api/kvs.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

int main() {
  using namespace rhik;

  // A 2-shard emulated array behind the server. enable_iterator turns on
  // the §VI prefix-signature scan that backs the ITER opcode.
  api::KvsDeviceOptions opts;
  opts.capacity_bytes = 256ull << 20;
  opts.num_shards = 2;
  opts.anticipated_keys = 10'000;
  opts.enable_iterator = true;
  api::KvsDevice dev(opts);

  // Ephemeral port; one event-loop worker is plenty for a quickstart.
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.num_workers = 1;
  net::KvServer server(dev, scfg);
  if (server.start() != Status::kOk) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // Tenant 7 gets a deliberately tiny quota so we can watch the token
  // bucket reject; tenant 1 is unlimited.
  net::TenantConfig quota;
  quota.ops_per_sec = 5;
  quota.burst = 3;
  server.tenants().configure(7, quota, net::KvServer::wall_now_ns());

  // -- Tenant 1: blocking verbs ----------------------------------------------
  net::KvClient::Options copts;
  copts.tenant_id = 1;
  net::KvClient c1(copts);
  if (c1.connect("127.0.0.1", server.port()) != Status::kOk) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  c1.put("user:1001", "alice");
  c1.put("user:1002", "bob");
  Bytes value;
  if (c1.get("user:1001", &value) == api::KvsResult::KVS_SUCCESS) {
    std::printf("tenant 1: user:1001 -> %s\n", to_string(value).c_str());
  }

  // -- Tenant namespaces are disjoint ----------------------------------------
  // The same key through a different tenant is a different device key
  // (the server prefixes every key with the 4-byte tenant id).
  net::KvClient::Options o2;
  o2.tenant_id = 2;
  net::KvClient c2(o2);
  c2.connect("127.0.0.1", server.port());
  Bytes unused;
  std::printf("tenant 2: get(user:1001) = %s (disjoint namespace)\n",
              api::to_string(c2.get("user:1001", &unused)));

  // -- Pipelining: submit a batch, match responses by request id -------------
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(
        c1.submit_put("post:" + std::to_string(i), "body " + std::to_string(i)));
  }
  c1.flush();  // one write for the whole batch
  for (const std::uint64_t id : ids) {
    net::ResponseFrame f;
    if (c1.wait_for(id, &f) != Status::kOk ||
        f.status != api::KvsResult::KVS_SUCCESS) {
      std::fprintf(stderr, "pipelined put %llu failed\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }
  std::vector<std::string> keys;
  if (c1.iterate("post:", 0, &keys) == api::KvsResult::KVS_SUCCESS) {
    std::printf("tenant 1: %zu keys under post:\n", keys.size());
  }

  // -- Tenant 7: watch the quota bite ----------------------------------------
  net::KvClient::Options o7;
  o7.tenant_id = 7;
  net::KvClient c7(o7);
  c7.connect("127.0.0.1", server.port());
  int ok = 0, throttled = 0;
  for (int i = 0; i < 10; ++i) {
    const api::KvsResult r = c7.put("burst:" + std::to_string(i), "x");
    if (r == api::KvsResult::KVS_ERR_QUEUE_FULL) {
      throttled++;  // retryable by contract: back off and resubmit
    } else if (r == api::KvsResult::KVS_SUCCESS) {
      ok++;
    }
  }
  std::printf("tenant 7 (5 ops/s, burst 3): %d ok, %d KVS_ERR_QUEUE_FULL\n",
              ok, throttled);

  // -- Server-side metrics ----------------------------------------------------
  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  std::printf("net.requests=%llu net.throttled=%llu net.connections=%lld\n",
              static_cast<unsigned long long>(snap.counter("net.requests")),
              static_cast<unsigned long long>(snap.counter("net.throttled")),
              static_cast<long long>(snap.gauge("net.connections")));

  c1.close();
  c2.close();
  c7.close();
  server.stop();
  return 0;
}
