// Quickstart: open an emulated KVSSD through the SNIA-style API, run the
// five KV verbs, and print the device counters.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "api/kvs.hpp"

int main() {
  using rhik::api::KvsDevice;
  using rhik::api::KvsDeviceOptions;
  using rhik::api::KvsResult;

  // A 1 GiB emulated KVSSD with RHIK indexing and a prefix iterator.
  KvsDeviceOptions opts;
  opts.capacity_bytes = 1ull << 30;
  opts.anticipated_keys = 10000;  // Eq. 2 initial sizing hint
  opts.enable_iterator = true;
  KvsDevice dev(opts);

  // store / retrieve / exist / delete.
  if (dev.store("user:1001", "alice") != KvsResult::KVS_SUCCESS) {
    std::fprintf(stderr, "store failed\n");
    return 1;
  }
  dev.store("user:1002", "bob");
  dev.store("post:9", "hello kvssd");

  rhik::Bytes value;
  if (dev.retrieve("user:1001", &value) == KvsResult::KVS_SUCCESS) {
    std::printf("user:1001 -> %s\n", rhik::to_string(value).c_str());
  }
  std::printf("exist(user:1002) = %s\n",
              rhik::api::to_string(dev.exist("user:1002")));
  std::printf("exist(user:9999) = %s\n",
              rhik::api::to_string(dev.exist("user:9999")));

  // Prefix iteration (the paper's §VI iterator extension).
  std::vector<std::string> users;
  dev.iterate("user", &users);
  std::printf("iterate(\"user\") found %zu keys:\n", users.size());
  for (const auto& k : users) std::printf("  %s\n", k.c_str());

  dev.remove("post:9");
  std::printf("after remove, retrieve(post:9) = %s\n",
              rhik::api::to_string(dev.retrieve("post:9", &value)));

  // Peek under the hood — the unified metrics view works the same
  // whether the device was opened sharded or not.
  const auto snap = dev.metrics_snapshot();
  std::printf("\ndevice: %lld keys, %lld B live data, simulated time %.3f ms\n",
              static_cast<long long>(snap.gauge("device.key_count")),
              static_cast<long long>(snap.gauge("device.live_bytes")),
              static_cast<double>(snap.gauge("clock.now_ns")) / 1e6);
  std::printf("index:  %lld records, capacity %lld, dir DRAM %lld B\n",
              static_cast<long long>(snap.gauge("index.size")),
              static_cast<long long>(snap.gauge("index.capacity")),
              static_cast<long long>(snap.gauge("index.dram_bytes")));
  return 0;
}
