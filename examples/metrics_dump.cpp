// Live observability demo: replay a synthetic IBM-COS-style trace with
// the periodic metrics-dump hook armed, printing per-stage latency
// percentiles (index probe / data-log flash / GC interference) and
// read-amplification as simulated time advances, then the sampled
// per-op trace ring and the final JSON export.
//
//   $ ./metrics_dump [--json] [--period-ms N]
//
// --json prints the full MetricsSnapshot JSON document at the end;
// --period-ms sets the dump cadence in simulated milliseconds.
#include <cstdio>
#include <cstring>
#include <string>

#include "kvssd/device.hpp"
#include "workload/ibm_cos.hpp"
#include "workload/replay.hpp"

using namespace rhik;

namespace {

void print_timer(const obs::MetricsSnapshot& snap, const char* name) {
  const Histogram* h = snap.timer(name);
  if (h == nullptr || h->count() == 0) return;
  std::printf("    %-24s n=%-9llu p50=%-9.0f p99=%.0f\n", name,
              static_cast<unsigned long long>(h->count()), h->percentile(50),
              h->percentile(99));
}

void print_dump(SimTime now, const obs::MetricsSnapshot& snap) {
  std::printf("  [sim %7.1f ms] gets=%llu puts=%llu cache-miss=%llu\n",
              static_cast<double>(now) / 1e6,
              static_cast<unsigned long long>(snap.counter("device.gets")),
              static_cast<unsigned long long>(snap.counter("device.puts")),
              static_cast<unsigned long long>(snap.counter("cache.misses")));
  for (const char* t : {"op.get.total_ns", "op.get.index_ns",
                        "op.get.flash_ns", "op.get.flash_reads",
                        "op.put.total_ns", "op.put.gc_ns"}) {
    print_timer(snap, t);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  SimTime period_ms = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--period-ms") == 0 && i + 1 < argc) {
      period_ms = static_cast<SimTime>(std::strtoull(argv[++i], nullptr, 10));
    }
  }

  // A small COS-style cluster: load phase then a skewed measured phase.
  auto profiles = workload::ibm_cos_profiles(/*scale=*/0.1);
  const auto& p = profiles[1];
  workload::Trace trace = workload::cos_load_trace(p, 1);
  const auto measure = workload::cos_measure_trace(p, 2);
  trace.insert(trace.end(), measure.begin(), measure.end());

  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(2ull << 30);
  cfg.dram_cache_bytes = 10ull << 20;
  cfg.obs.trace_sample_every = 1024;
  cfg.obs.dump_period_ns = period_ms * kMillisecond;
  kvssd::KvssdDevice dev(cfg);

  std::printf("replaying COS cluster %s (%zu ops), dump every %llu sim ms\n",
              p.name.c_str(), trace.size(),
              static_cast<unsigned long long>(period_ms));
  dev.set_metrics_dump(print_dump);

  workload::ReplayOptions opts;
  const auto r = workload::replay(dev, trace, opts);
  std::printf("\nreplay done: %llu ops, %.0f ops/s simulated\n",
              static_cast<unsigned long long>(r.ops), r.throughput_ops());

  std::printf("\nsampled per-op traces (1 in %u, newest last):\n",
              cfg.obs.trace_sample_every);
  const auto recent = dev.trace_ring().recent();
  const std::size_t show = recent.size() < 8 ? recent.size() : 8;
  for (std::size_t i = recent.size() - show; i < recent.size(); ++i) {
    std::printf("  %s\n", recent[i].to_string().c_str());
  }

  const obs::MetricsSnapshot snap = dev.metrics_snapshot();
  std::printf("\nfinal snapshot: %zu counters, %zu gauges, %zu timers\n",
              snap.counters.size(), snap.gauges.size(), snap.timers.size());
  print_dump(snap.captured_at_ns, snap);
  if (json) std::printf("\n%s\n", snap.to_json().c_str());
  return 0;
}
