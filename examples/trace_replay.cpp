// Replay a KV trace file against the emulated KVSSD.
//
// Trace format (CSV): one of put|get|del|exist, a numeric key id, and a
// value size (puts only), e.g.
//     put,17,4096
//     get,17,0
// With no arguments, a demo IBM-COS-style trace is synthesized, saved to
// a temp file, and replayed — demonstrating the full trace tool chain.
//
//   $ ./trace_replay [trace.csv] [--mlhash] [--async]
#include <cstdio>
#include <cstring>
#include <string>

#include "kvssd/device.hpp"
#include "workload/ibm_cos.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace rhik;

  std::string path;
  bool use_mlhash = false;
  bool async = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mlhash") == 0) {
      use_mlhash = true;
    } else if (std::strcmp(argv[i], "--async") == 0) {
      async = true;
    } else {
      path = argv[i];
    }
  }

  workload::Trace trace;
  if (path.empty()) {
    // Demo: synthesize a small COS-style cluster and round-trip it
    // through the CSV trace format.
    auto profiles = workload::ibm_cos_profiles(/*scale=*/0.1);
    const auto& p = profiles[1];  // cluster 022
    trace = workload::cos_load_trace(p, 1);
    const auto measure = workload::cos_measure_trace(p, 2);
    trace.insert(trace.end(), measure.begin(), measure.end());
    path = "/tmp/rhik_demo_trace.csv";
    if (!ok(workload::save_trace(trace, path))) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("synthesized COS cluster %s trace -> %s (%zu ops)\n",
                p.name.c_str(), path.c_str(), trace.size());
  }

  auto loaded = workload::load_trace(path);
  if (!loaded) {
    std::fprintf(stderr, "cannot load trace %s: %s\n", path.c_str(),
                 std::string(to_string(loaded.status())).c_str());
    return 1;
  }

  kvssd::DeviceConfig cfg;
  cfg.geometry = flash::Geometry::with_capacity(2ull << 30);
  cfg.dram_cache_bytes = 10ull << 20;  // the paper's Fig. 5 budget
  cfg.index_kind =
      use_mlhash ? kvssd::IndexKind::kMlHash : kvssd::IndexKind::kRhik;
  if (use_mlhash) {
    cfg.mlhash = index::MlHashConfig::for_keys(1'000'000, cfg.geometry.page_size);
  }
  kvssd::KvssdDevice dev(cfg);

  workload::ReplayOptions opts;
  opts.async = async;
  const auto r = workload::replay(dev, *loaded, opts);

  std::printf("\nreplayed %llu ops (%s, %s index)\n",
              static_cast<unsigned long long>(r.ops), async ? "async" : "sync",
              use_mlhash ? "multi-level-hash" : "RHIK");
  std::printf("  throughput:   %.0f ops/s, %.1f MiB/s (simulated)\n",
              r.throughput_ops(), r.throughput_mib());
  std::printf("  not found:    %llu   failed: %llu\n",
              static_cast<unsigned long long>(r.not_found),
              static_cast<unsigned long long>(r.failed_ops));
  const auto& ix = dev.index().op_stats();
  std::printf("  index:        %llu keys, %llu flash reads, p99 reads/lookup %.2f\n",
              static_cast<unsigned long long>(dev.index().size()),
              static_cast<unsigned long long>(ix.flash_reads),
              ix.reads_per_lookup.percentile(99));
  std::printf("  gc:           %llu blocks reclaimed\n",
              static_cast<unsigned long long>(dev.gc().stats().blocks_reclaimed));
  return 0;
}
